// Golden-aggregate regression gate for the PAPER-SCALE grid: the committed
// tests/data files pin the exact bytes of the full 24-mix, 4-core figure
// pipeline - all policies, Model3 + the Perfect oracle, the alpha
// sensitivity axis {1.0, 1.05, 1.1} - i.e. the scenario-weighted Fig. 6
// savings, the Fig. 7 violation statistics and the Fig. 9 oracle deltas the
// paper reports. Any result-moving change must regenerate the paper numbers
// in the same commit, so savings drift is visible in review, never silent.
//
// Regenerate with:
//   ./build/src/sweep_main --cores=4 --per-scenario=6 \
//       --models=model3,perfect --alphas=1,1.05,1.1 \
//       --db-cache=.qosdb-cache --rows-csv=/tmp/paper_rows.csv \
//       --agg-csv=tests/data/golden_paper_grid_agg.csv \
//       --report-json=tests/data/golden_paper_grid_report.json
#include <gtest/gtest.h>

#include <cstdio>
#include <fstream>
#include <sstream>
#include <string>

#include "rmsim/report.hh"
#include "rmsim/shard.hh"
#include "rmsim/sweep.hh"
#include "support/shared_db.hh"
#include "workload/db_io.hh"
#include "workload/workload_gen.hh"

namespace qosrm::rmsim {
namespace {

std::string slurp(const std::string& path) {
  std::ifstream in(path, std::ios::binary);
  EXPECT_TRUE(in.good()) << "cannot open " << path;
  std::ostringstream ss;
  ss << in.rdbuf();
  return ss.str();
}

/// The canonical paper grid (must match the regeneration command above and
/// the CI paper-grid job).
SweepGrid paper_grid(const workload::SimDb& db) {
  workload::WorkloadGenOptions gen;
  gen.cores = 4;
  gen.per_scenario = 6;
  gen.seed = 2020;

  SweepGrid grid;
  grid.mixes = workload::generate_workloads(db.suite(), gen);
  grid.policies = {rm::RmPolicy::Idle, rm::RmPolicy::Rm1, rm::RmPolicy::Rm2,
                   rm::RmPolicy::Rm3};
  grid.models = {rm::PerfModelKind::Model3, rm::PerfModelKind::Perfect};
  grid.qos_alphas = {1.0, 1.05, 1.1};
  return grid;
}

class GoldenAggregates : public ::testing::Test {
 protected:
  static void SetUpTestSuite() {
    const workload::SimDb& db = testing::shared_db(4);
    grid_ = new SweepGrid(paper_grid(db));
    SweepRunner runner(db, {});
    result_ = new SweepResult(runner.run(*grid_));
    fingerprint_ = sweep_fingerprint(
        *grid_, SimOptions{},
        workload::simdb_fingerprint(db.suite(), db.system(),
                                    db.phase_options()));
  }
  static void TearDownTestSuite() {
    delete result_;
    result_ = nullptr;
    delete grid_;
    grid_ = nullptr;
  }

  static SweepGrid* grid_;
  static SweepResult* result_;
  static std::uint64_t fingerprint_;
};

SweepGrid* GoldenAggregates::grid_ = nullptr;
SweepResult* GoldenAggregates::result_ = nullptr;
std::uint64_t GoldenAggregates::fingerprint_ = 0;

TEST_F(GoldenAggregates, PaperGridAggregatesMatchCommittedGolden) {
  ASSERT_EQ(result_->rows.size(), 24u * 4u * 2u * 3u);

  const std::string actual_path =
      ::testing::TempDir() + "/golden_check_paper_agg.csv";
  write_aggregates_csv(*result_, actual_path);
  const std::string actual = slurp(actual_path);
  std::remove(actual_path.c_str());

  const std::string golden_path =
      std::string(QOSRM_TEST_DATA_DIR) + "/golden_paper_grid_agg.csv";
  const std::string golden = slurp(golden_path);
  ASSERT_FALSE(golden.empty()) << golden_path;

  EXPECT_EQ(actual, golden)
      << "paper-grid aggregates drifted from " << golden_path
      << "\nIf the change is intentional, regenerate the golden files (see "
         "the header of this test) and justify the numerical diff in the "
         "same commit.";
}

TEST_F(GoldenAggregates, PaperGridFigureReportMatchesCommittedGolden) {
  const workload::SimDb& db = testing::shared_db(4);
  const FigureReport report = build_figure_report(
      result_->rows, grid_->shape(), fingerprint_, scenario_weights(db.suite()));

  // The report must carry the paper's three result sets: 24 configurations
  // of fig6/fig7 and the Model3-vs-Perfect deltas of fig9.
  ASSERT_EQ(report.fig6.size(), 4u * 2u * 3u);
  ASSERT_EQ(report.fig7.size(), 4u * 2u * 3u);
  ASSERT_EQ(report.fig9.size(), 4u * 3u);

  const std::string golden_path =
      std::string(QOSRM_TEST_DATA_DIR) + "/golden_paper_grid_report.json";
  const std::string golden = slurp(golden_path);
  ASSERT_FALSE(golden.empty()) << golden_path;

  EXPECT_EQ(figure_report_json(report), golden)
      << "paper-grid figure report drifted from " << golden_path
      << "\nIf the change is intentional, regenerate the golden files (see "
         "the header of this test) and justify the numerical diff in the "
         "same commit.";
}

TEST_F(GoldenAggregates, ReportBytesAreStableAcrossShardCounts) {
  // The same rows routed through the part-file save/load/merge path (as the
  // CI paper-grid job's sharded run produces them) must yield the exact
  // golden report bytes - shard count can never show up in a report.
  const GridShape shape = grid_->shape();
  const std::size_t kShards = 3;
  std::vector<std::string> paths;
  for (std::size_t i = 0; i < kShards; ++i) {
    SweepPart part;
    part.fingerprint = fingerprint_;
    part.shape = shape;
    part.shard_index = i;
    part.shard_count = kShards;
    part.range = shard_range(shape.size(), i, kShards);
    part.rows.assign(result_->rows.begin() +
                         static_cast<std::ptrdiff_t>(part.range.begin),
                     result_->rows.begin() +
                         static_cast<std::ptrdiff_t>(part.range.end));
    const std::string path =
        part_path(::testing::TempDir() + "/golden_paper", i, kShards);
    std::string error;
    ASSERT_TRUE(save_sweep_part(part, path, &error)) << error;
    paths.push_back(path);
  }

  std::string error;
  SweepIdentity identity;
  const std::optional<SweepResult> merged =
      merge_part_files(paths, &fingerprint_, &error, &identity);
  for (const std::string& path : paths) std::remove(path.c_str());
  ASSERT_TRUE(merged.has_value()) << error;
  EXPECT_EQ(identity.fingerprint, fingerprint_);

  const workload::SimDb& db = testing::shared_db(4);
  const FigureReport direct = build_figure_report(
      result_->rows, shape, fingerprint_, scenario_weights(db.suite()));
  const FigureReport via_parts = build_figure_report(
      merged->rows, identity.shape, identity.fingerprint,
      scenario_weights(db.suite()));
  EXPECT_EQ(figure_report_json(via_parts), figure_report_json(direct));
}

// ---------------------------------------------------------------------------
// Classic-baseline golden gate: the same 24 paper mixes swept under the
// partitioning-only baselines (UCP / FCP / ClassPart) next to the Idle
// reference, Model3 only - the fast-suite subset of the baseline axis (the
// nightly paper-grid job re-runs this grid through the sweep_main binary and
// diffs the same committed files). Pins the Fig. 6/7 comparison rows the
// baselines contribute.
//
// Regenerate with:
//   ./build/src/sweep_main --cores=4 --per-scenario=6 \
//       --policies=idle,ucp,fcp,classpart --models=model3 \
//       --alphas=1,1.05,1.1 --db-cache=.qosdb-cache \
//       --rows-csv=/tmp/baseline_rows.csv \
//       --agg-csv=tests/data/golden_paper_baselines_agg.csv \
//       --report-json=tests/data/golden_paper_baselines_report.json

SweepGrid baseline_grid(const workload::SimDb& db) {
  SweepGrid grid = paper_grid(db);
  grid.policies = {rm::RmPolicy::Idle, rm::RmPolicy::Ucp, rm::RmPolicy::Fcp,
                   rm::RmPolicy::ClassPart};
  grid.models = {rm::PerfModelKind::Model3};
  return grid;
}

TEST(GoldenBaselineAggregates, BaselineGridMatchesCommittedGolden) {
  const workload::SimDb& db = testing::shared_db(4);
  const SweepGrid grid = baseline_grid(db);
  SweepRunner runner(db, {});
  const SweepResult result = runner.run(grid);
  ASSERT_EQ(result.rows.size(), 24u * 4u * 1u * 3u);

  const std::string actual_path =
      ::testing::TempDir() + "/golden_check_baselines_agg.csv";
  write_aggregates_csv(result, actual_path);
  const std::string actual = slurp(actual_path);
  std::remove(actual_path.c_str());

  const std::string golden_path =
      std::string(QOSRM_TEST_DATA_DIR) + "/golden_paper_baselines_agg.csv";
  const std::string golden = slurp(golden_path);
  ASSERT_FALSE(golden.empty()) << golden_path;
  EXPECT_EQ(actual, golden)
      << "baseline-policy aggregates drifted from " << golden_path
      << "\nIf the change is intentional, regenerate the golden files (see "
         "the header of this test) and justify the numerical diff in the "
         "same commit.";

  const FigureReport report = build_figure_report(
      result.rows, grid.shape(),
      sweep_fingerprint(grid, SimOptions{},
                        workload::simdb_fingerprint(db.suite(), db.system(),
                                                    db.phase_options())),
      scenario_weights(db.suite()));
  // Fig. 6/7 gain one row per (baseline policy, alpha); Fig. 9 needs the
  // Perfect oracle, which this grid deliberately omits.
  ASSERT_EQ(report.fig6.size(), 4u * 1u * 3u);
  ASSERT_EQ(report.fig7.size(), 4u * 1u * 3u);
  ASSERT_TRUE(report.fig9.empty());

  const std::string report_path =
      std::string(QOSRM_TEST_DATA_DIR) + "/golden_paper_baselines_report.json";
  const std::string golden_report = slurp(report_path);
  ASSERT_FALSE(golden_report.empty()) << report_path;
  EXPECT_EQ(figure_report_json(report), golden_report)
      << "baseline-policy figure report drifted from " << report_path;
}

// ---------------------------------------------------------------------------
// CBP golden gate: a small 4-core grid with the memory-bandwidth knob
// engaged (--bw-shares=2, i.e. share axis [1, 3] around a 2-share baseline).
// This is the ONLY golden whose results flow through the genuinely 2-D
// (ways x shares) optimizer path - the paper grids above all run the
// degenerate single-share configuration and pin its byte-identity instead.
// The nightly paper-grid job re-runs this grid through the sweep_main binary
// and diffs the same committed files.
//
// Regenerate with:
//   ./build/src/sweep_main --cores=4 --per-scenario=1 --bw-shares=2 \
//       --models=model3 --alphas=1,1.05,1.1 --db-cache=.qosdb-cache \
//       --rows-csv=/tmp/cbp_rows.csv \
//       --agg-csv=tests/data/golden_cbp_grid_agg.csv \
//       --report-json=tests/data/golden_cbp_grid_report.json

TEST(GoldenCbpAggregates, BandwidthPartitionedGridMatchesCommittedGolden) {
  const workload::SimDb& db = testing::shared_db(4, /*bw_shares=*/2);

  workload::WorkloadGenOptions gen;
  gen.cores = 4;
  gen.per_scenario = 1;
  gen.seed = 2020;
  SweepGrid grid;
  grid.mixes = workload::generate_workloads(db.suite(), gen);
  grid.policies = {rm::RmPolicy::Idle, rm::RmPolicy::Rm1, rm::RmPolicy::Rm2,
                   rm::RmPolicy::Rm3};
  grid.models = {rm::PerfModelKind::Model3};
  grid.qos_alphas = {1.0, 1.05, 1.1};

  SweepRunner runner(db, {});
  const SweepResult result = runner.run(grid);
  ASSERT_EQ(result.rows.size(), 4u * 4u * 1u * 3u);

  const std::string actual_path =
      ::testing::TempDir() + "/golden_check_cbp_agg.csv";
  write_aggregates_csv(result, actual_path);
  const std::string actual = slurp(actual_path);
  std::remove(actual_path.c_str());

  const std::string golden_path =
      std::string(QOSRM_TEST_DATA_DIR) + "/golden_cbp_grid_agg.csv";
  const std::string golden = slurp(golden_path);
  ASSERT_FALSE(golden.empty()) << golden_path;
  EXPECT_EQ(actual, golden)
      << "CBP-grid aggregates drifted from " << golden_path
      << "\nIf the change is intentional, regenerate the golden files (see "
         "the header of this test) and justify the numerical diff in the "
         "same commit.";

  const FigureReport report = build_figure_report(
      result.rows, grid.shape(),
      sweep_fingerprint(grid, SimOptions{},
                        workload::simdb_fingerprint(db.suite(), db.system(),
                                                    db.phase_options())),
      scenario_weights(db.suite()));
  const std::string report_path =
      std::string(QOSRM_TEST_DATA_DIR) + "/golden_cbp_grid_report.json";
  const std::string golden_report = slurp(report_path);
  ASSERT_FALSE(golden_report.empty()) << report_path;
  EXPECT_EQ(figure_report_json(report), golden_report)
      << "CBP-grid figure report drifted from " << report_path;
}

// ---------------------------------------------------------------------------
// Scaled paper grids: the same 24 paper mixes replicated scenario-preserving
// onto 8 and 16 cores (sweep_main --cores=4 --replicate=2|4). These pin the
// optimizer hot path at the core counts where the vectorized DP and the
// interval-outcome memo actually engage (memo auto-enables at >= 8 cores),
// and the committed bytes are verified identical under the AVX2 and scalar
// builds - any SIMD-width-dependent result or op count fails this gate.
//
// Regenerate with (and its --replicate=4 twin for 16 cores):
//   ./build/src/sweep_main --cores=4 --replicate=2 --per-scenario=6 \
//       --models=model3,perfect --alphas=1,1.05,1.1 \
//       --db-cache=.qosdb-cache --rows-csv=/tmp/paper8_rows.csv \
//       --agg-csv=tests/data/golden_paper_grid8_agg.csv \
//       --report-json=tests/data/golden_paper_grid8_report.json

class GoldenScaledAggregates : public ::testing::TestWithParam<int> {};

TEST_P(GoldenScaledAggregates, ReplicatedGridAggregatesMatchCommittedGolden) {
  const int replicate = GetParam();
  const int cores = 4 * replicate;
  const workload::SimDb& db = testing::shared_db(cores);

  SweepGrid grid = paper_grid(testing::shared_db(4));
  grid.mixes = workload::replicate_workloads(grid.mixes, replicate);

  SweepRunner runner(db, {});
  const SweepResult result = runner.run(grid);
  ASSERT_EQ(result.rows.size(), 24u * 4u * 2u * 3u);

  const std::string actual_path = ::testing::TempDir() +
                                  "/golden_check_paper" +
                                  std::to_string(cores) + "_agg.csv";
  write_aggregates_csv(result, actual_path);
  const std::string actual = slurp(actual_path);
  std::remove(actual_path.c_str());

  const std::string golden_path = std::string(QOSRM_TEST_DATA_DIR) +
                                  "/golden_paper_grid" +
                                  std::to_string(cores) + "_agg.csv";
  const std::string golden = slurp(golden_path);
  ASSERT_FALSE(golden.empty()) << golden_path;
  EXPECT_EQ(actual, golden)
      << cores << "-core paper-grid aggregates drifted from " << golden_path
      << "\nIf the change is intentional, regenerate the golden files (see "
         "the header of this test) and justify the numerical diff in the "
         "same commit.";

  const FigureReport report = build_figure_report(
      result.rows, grid.shape(),
      sweep_fingerprint(grid, SimOptions{},
                        workload::simdb_fingerprint(db.suite(), db.system(),
                                                    db.phase_options())),
      scenario_weights(db.suite()));
  const std::string report_path = std::string(QOSRM_TEST_DATA_DIR) +
                                  "/golden_paper_grid" +
                                  std::to_string(cores) + "_report.json";
  const std::string golden_report = slurp(report_path);
  ASSERT_FALSE(golden_report.empty()) << report_path;
  EXPECT_EQ(figure_report_json(report), golden_report)
      << cores << "-core paper-grid figure report drifted from " << report_path;
}

INSTANTIATE_TEST_SUITE_P(ReplicationFactors, GoldenScaledAggregates,
                         ::testing::Values(2, 4));

}  // namespace
}  // namespace qosrm::rmsim
