// The --bw-shares CLI contract on the REAL binaries, plus the cross-merge
// guard: shard parts produced under different bandwidth-partitioning
// configurations must never merge.
//
// The binaries are spawned through sh so their diagnostics don't clutter the
// test log; a value below 1 is a clean usage error (exit 1) and garbage is a
// hard QOSRM_CHECK abort from the strict get_int parser (signal exit).
#include <gtest/gtest.h>

#include <string>

#include "arch/system_config.hh"
#include "common/subprocess.hh"
#include "rmsim/shard.hh"
#include "rmsim/sweep.hh"
#include "workload/db_io.hh"
#include "workload/spec_suite.hh"

namespace qosrm::rmsim {
namespace {

int run_silenced(const std::string& binary, const std::string& flag) {
  const std::string cmd =
      std::string(QOSRM_BIN_DIR) + "/" + binary + " " + flag + " >/dev/null 2>&1";
  Subprocess child = Subprocess::spawn({"sh", "-c", cmd});
  const SubprocessExit exit = child.wait();
  // sh reports a signal death as 128 + signo; pass both forms through.
  return exit.exited ? exit.exit_code : 128 + exit.term_signal;
}

class BwSharesCli : public ::testing::TestWithParam<const char*> {};

TEST_P(BwSharesCli, RejectsZeroAndNegativeWithUsageError) {
  const std::string binary = GetParam();
  EXPECT_EQ(run_silenced(binary, "--bw-shares=0"), 1);
  EXPECT_EQ(run_silenced(binary, "--bw-shares=-2"), 1);
}

TEST_P(BwSharesCli, RejectsGarbageViaStrictIntegerParse) {
  const std::string binary = GetParam();
  // SIGABRT from QOSRM_CHECK -> 128 + 6 through sh.
  EXPECT_EQ(run_silenced(binary, "--bw-shares=abc"), 134);
  EXPECT_EQ(run_silenced(binary, "--bw-shares=2.5"), 134);
  EXPECT_EQ(run_silenced(binary, "--bw-shares="), 134);
}

INSTANTIATE_TEST_SUITE_P(Binaries, BwSharesCli,
                         ::testing::Values("sweep_main", "service_main"));

// Parts stamped under different share counts carry different fingerprints
// (the bw config feeds simdb_fingerprint, which feeds sweep_fingerprint),
// so the merger refuses the mix outright.
TEST(BwSharesCli, PartsFromDifferentShareCountsNeverCrossMerge) {
  auto fingerprint_for = [](int bw_shares) {
    arch::SystemConfig system;
    system.cores = 2;
    system.bw = arch::bw_config_for_shares(bw_shares);
    const std::uint64_t db_fp = workload::simdb_fingerprint(
        workload::spec_suite(), system, workload::PhaseStatsOptions{});
    return sweep_fingerprint(SweepGrid{}, SimOptions{}, db_fp);
  };
  const std::uint64_t fp1 = fingerprint_for(1);
  const std::uint64_t fp2 = fingerprint_for(2);
  ASSERT_NE(fp1, fp2);

  SweepPart a;
  a.fingerprint = fp1;
  a.shard_index = 0;
  a.shard_count = 2;
  SweepPart b;
  b.fingerprint = fp2;
  b.shard_index = 1;
  b.shard_count = 2;

  std::string error;
  const auto merged = merge_sweep_parts({a, b}, &error);
  EXPECT_FALSE(merged.has_value());
  EXPECT_NE(error.find("different sweep"), std::string::npos) << error;
}

}  // namespace
}  // namespace qosrm::rmsim
