#include "workload/trace_synth.hh"

#include <gtest/gtest.h>

#include "cache/miss_curve.hh"
#include "cache/recency.hh"

namespace qosrm::workload {
namespace {

PhaseParams base_phase() {
  PhaseParams p;
  p.lpki = 5.0;
  p.reuse = make_stack_profile(0.4, 0.4, 8.0, 2.0, 0.2);
  p.dep_frac = 0.2;
  p.burst_size = 6.0;
  p.intra_gap = 25.0;
  return p;
}

TEST(TraceSynth, DeterministicInSeed) {
  const auto a = synthesize_trace(base_phase(), {}, 42);
  const auto b = synthesize_trace(base_phase(), {}, 42);
  ASSERT_EQ(a.accesses.size(), b.accesses.size());
  for (std::size_t i = 0; i < a.accesses.size(); ++i) {
    EXPECT_EQ(a.accesses[i].inst_index, b.accesses[i].inst_index);
    EXPECT_EQ(a.accesses[i].tag, b.accesses[i].tag);
    EXPECT_EQ(a.accesses[i].set, b.accesses[i].set);
  }
}

TEST(TraceSynth, SeedChangesTrace) {
  const auto a = synthesize_trace(base_phase(), {}, 1);
  const auto b = synthesize_trace(base_phase(), {}, 2);
  bool differs = a.accesses.size() != b.accesses.size();
  for (std::size_t i = 0; !differs && i < a.accesses.size(); ++i) {
    differs = a.accesses[i].tag != b.accesses[i].tag;
  }
  EXPECT_TRUE(differs);
}

TEST(TraceSynth, InstructionIndicesStrictlyIncrease) {
  const auto t = synthesize_trace(base_phase(), {}, 3);
  for (std::size_t i = 1; i < t.accesses.size(); ++i) {
    EXPECT_GT(t.accesses[i].inst_index, t.accesses[i - 1].inst_index);
  }
}

TEST(TraceSynth, DensityMatchesLpki) {
  PhaseParams p = base_phase();
  p.lpki = 8.0;
  const auto t = synthesize_trace(p, {}, 5);
  const double measured_lpki = static_cast<double>(t.accesses.size()) /
                               (t.represented_instructions / 1000.0);
  EXPECT_NEAR(measured_lpki, 8.0, 8.0 * 0.15);
}

TEST(TraceSynth, SetsWithinConfiguredRange) {
  TraceSynthConfig cfg;
  cfg.sets = 32;
  const auto t = synthesize_trace(base_phase(), cfg, 7);
  for (const auto& a : t.accesses) EXPECT_LT(a.set, 32u);
}

TEST(TraceSynth, DepFracControlsDependentLoads) {
  PhaseParams chained = base_phase();
  chained.dep_frac = 0.8;
  PhaseParams indep = base_phase();
  indep.dep_frac = 0.0;

  const auto tc = synthesize_trace(chained, {}, 9);
  const auto ti = synthesize_trace(indep, {}, 9);
  auto dep_count = [](const SynthesizedTrace& t) {
    int n = 0;
    for (const auto& a : t.accesses) n += a.depends_on_prev;
    return n;
  };
  EXPECT_EQ(dep_count(ti), 0);
  EXPECT_GT(dep_count(tc), static_cast<int>(tc.accesses.size()) / 3);
}

TEST(TraceSynth, ColdProfileProducesFlatHighMissCurve) {
  PhaseParams p = base_phase();
  p.reuse = make_stack_profile(0.2, 0.02, 4.0, 2.0, 0.78);
  const auto t = synthesize_trace(p, {}, 11);
  cache::RecencyProfiler prof(64, 16);
  const auto recency = prof.annotate(t.accesses);
  const auto curve = cache::MissCurve::from_recency(recency, 16);
  const double m4 = curve.misses(4);
  const double m16 = curve.misses(16);
  EXPECT_GT(m16, 0.6 * static_cast<double>(t.accesses.size()));
  EXPECT_LT((m4 - m16) / m4, 0.15);  // flat: CI behaviour
}

TEST(TraceSynth, SensitiveProfileProducesSteepCurve) {
  PhaseParams p = base_phase();
  p.reuse = make_stack_profile(0.35, 0.55, 8.0, 2.0, 0.10);
  const auto t = synthesize_trace(p, {}, 13);
  cache::RecencyProfiler prof(64, 16);
  const auto recency = prof.annotate(t.accesses);
  const auto curve = cache::MissCurve::from_recency(recency, 16);
  // Going from 4 to 16 ways must remove a large share of misses: CS behaviour.
  EXPECT_GT(curve.misses(4), 2.0 * curve.misses(16));
}

TEST(TraceSynth, RealizedReusePositionsMatchProfile) {
  // The generator realizes requested recency positions exactly (given
  // sufficient occupancy); verify the measured histogram tracks the profile.
  PhaseParams p = base_phase();
  p.reuse = make_stack_profile(0.5, 0.3, 6.0, 1.5, 0.2);
  TraceSynthConfig cfg;
  cfg.represented_instructions = 4e6;
  const auto t = synthesize_trace(p, cfg, 17);
  cache::RecencyProfiler prof(cfg.sets, 16);
  const auto recency = prof.annotate(t.accesses);

  double hits01 = 0.0, cold = 0.0;
  for (const std::uint8_t r : recency) {
    if (r == cache::kRecencyMiss) {
      cold += 1.0;
    } else if (r <= 1) {
      hits01 += 1.0;
    }
  }
  const double n = static_cast<double>(recency.size());
  EXPECT_NEAR(hits01 / n, 0.5, 0.06);
  // Cold fraction also includes the warm-up transient, so allow extra room.
  EXPECT_NEAR(cold / n, 0.2, 0.08);
}

TEST(TraceSynth, BurstSizeBoundsRunLengths) {
  PhaseParams p = base_phase();
  p.burst_size = 10.0;
  p.lpki = 10.0;
  const auto t = synthesize_trace(p, {}, 19);
  EXPECT_GT(t.accesses.size(), 1000u);
}

}  // namespace
}  // namespace qosrm::workload
