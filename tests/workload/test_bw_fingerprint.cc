// Snapshot/cache identity under the bandwidth-partitioning knob. Two
// guarantees, pulling in opposite directions:
//
//   * A DEGENERATE config (bw_shares=1, the default) must hash to the exact
//     pre-CBP fingerprint - the committed goldens and any .qosdb snapshots
//     stamped before the knob existed must keep validating.
//   * Any two DIFFERENT bandwidth configurations must never share a
//     fingerprint or a cache path, so their artifacts can't cross-load.
#include "workload/db_io.hh"

#include <gtest/gtest.h>

#include <string>

#include "arch/system_config.hh"
#include "workload/spec_suite.hh"

namespace qosrm::workload {
namespace {

std::uint64_t fp_for(const arch::BwConfig& bw) {
  arch::SystemConfig system;
  system.bw = bw;
  return simdb_fingerprint(spec_suite(), system, PhaseStatsOptions{});
}

TEST(BwFingerprint, DegenerateConfigsHashLikeThePreKnobSystem) {
  // All of these ARE the unpartitioned system; the bw fields must not enter
  // the hash at all (that is what keeps pre-knob snapshots loadable).
  const std::uint64_t base = fp_for(arch::BwConfig{});
  EXPECT_EQ(fp_for(arch::bw_config_for_shares(0)), base);
  EXPECT_EQ(fp_for(arch::bw_config_for_shares(1)), base);
  arch::BwConfig contention_only;
  contention_only.contention = 0.9;  // unused while degenerate
  EXPECT_EQ(fp_for(contention_only), base);
}

TEST(BwFingerprint, ShareCountsSeparate) {
  const std::uint64_t base = fp_for(arch::BwConfig{});
  const std::uint64_t two = fp_for(arch::bw_config_for_shares(2));
  const std::uint64_t three = fp_for(arch::bw_config_for_shares(3));
  const std::uint64_t four = fp_for(arch::bw_config_for_shares(4));
  EXPECT_NE(two, base);
  EXPECT_NE(three, base);
  EXPECT_NE(four, base);
  EXPECT_NE(two, three);
  EXPECT_NE(two, four);
  EXPECT_NE(three, four);
}

TEST(BwFingerprint, NonDegenerateParametersAllEnterTheHash) {
  const arch::BwConfig base_bw = arch::bw_config_for_shares(4);
  const std::uint64_t base = fp_for(base_bw);

  arch::BwConfig bw = base_bw;
  bw.min_shares += 1;
  EXPECT_NE(fp_for(bw), base);

  bw = base_bw;
  bw.max_shares += 1;
  EXPECT_NE(fp_for(bw), base);

  bw = base_bw;
  bw.contention = 0.25;
  EXPECT_NE(fp_for(bw), base);
}

TEST(BwFingerprint, CachePathsSeparateShareCounts) {
  // bw_shares=1 keeps the historic name (existing caches stay warm);
  // partitioned runs get their own -b<N> file per share count.
  EXPECT_EQ(db_cache_path("cache", 4), "cache/suite-c4.qosdb");
  EXPECT_EQ(db_cache_path("cache", 4, 1), "cache/suite-c4.qosdb");
  const std::string b2 = db_cache_path("cache", 4, 2);
  const std::string b3 = db_cache_path("cache", 4, 3);
  EXPECT_NE(b2, db_cache_path("cache", 4));
  EXPECT_NE(b2, b3);
  EXPECT_NE(db_cache_path("cache", 2, 2), b2);  // core count still separates
  EXPECT_NE(b2.find("-b2"), std::string::npos);
}

}  // namespace
}  // namespace qosrm::workload
