#include "workload/app_profile.hh"

#include <gtest/gtest.h>

#include <set>

namespace qosrm::workload {
namespace {

TEST(StackProfile, MassDistributionSumsToComponents) {
  const StackProfile p = make_stack_profile(0.4, 0.4, 8.0, 2.0, 0.2);
  EXPECT_NEAR(p.total(), 1.0, 1e-9);
  EXPECT_NEAR(p.hit_weight[0] + p.hit_weight[1], 0.4, 1e-9);
  EXPECT_NEAR(p.cold_weight, 0.2, 1e-9);
}

TEST(StackProfile, SensitiveBandPeaksAtCenter) {
  const StackProfile p = make_stack_profile(0.0, 1.0, 8.0, 2.0, 0.0);
  for (int r = 2; r < 16; ++r) {
    EXPECT_LE(p.hit_weight[static_cast<std::size_t>(r)], p.hit_weight[8]);
  }
  EXPECT_GT(p.hit_weight[8], 0.1);
}

TEST(StackProfile, WiderBandSpreadsMass) {
  const StackProfile narrow = make_stack_profile(0.0, 1.0, 8.0, 1.2, 0.0);
  const StackProfile wide = make_stack_profile(0.0, 1.0, 8.0, 4.0, 0.0);
  EXPECT_GT(narrow.hit_weight[8], wide.hit_weight[8]);
  EXPECT_LT(narrow.hit_weight[14], wide.hit_weight[14]);
}

TEST(PhaseSequence, LengthAndRange) {
  const auto seq = make_phase_sequence(3, {0.5, 0.3, 0.2}, 50, 0.6, 1);
  EXPECT_EQ(seq.size(), 50u);
  for (const int ph : seq) {
    EXPECT_GE(ph, 0);
    EXPECT_LT(ph, 3);
  }
}

TEST(PhaseSequence, DeterministicInSeed) {
  const auto a = make_phase_sequence(4, {1, 1, 1, 1}, 100, 0.7, 42);
  const auto b = make_phase_sequence(4, {1, 1, 1, 1}, 100, 0.7, 42);
  const auto c = make_phase_sequence(4, {1, 1, 1, 1}, 100, 0.7, 43);
  EXPECT_EQ(a, b);
  EXPECT_NE(a, c);
}

TEST(PhaseSequence, HighStayProbabilityProducesRuns) {
  const auto seq = make_phase_sequence(4, {1, 1, 1, 1}, 400, 0.9, 7);
  int transitions = 0;
  for (std::size_t i = 1; i < seq.size(); ++i) transitions += seq[i] != seq[i - 1];
  // With stay=0.9 and 4 phases, expected transition rate is well below 0.2.
  EXPECT_LT(transitions, 80);
}

TEST(PhaseSequence, VisitsAllPhasesEventually) {
  const auto seq = make_phase_sequence(3, {1, 1, 1}, 500, 0.5, 11);
  std::set<int> seen(seq.begin(), seq.end());
  EXPECT_EQ(seen.size(), 3u);
}

TEST(PhaseSequence, SinglePhaseIsConstant) {
  const auto seq = make_phase_sequence(1, {1.0}, 20, 0.5, 3);
  for (const int ph : seq) EXPECT_EQ(ph, 0);
}

}  // namespace
}  // namespace qosrm::workload
