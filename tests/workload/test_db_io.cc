#include "workload/db_io.hh"

#include <gtest/gtest.h>

#include <chrono>
#include <cstdio>
#include <fstream>
#include <optional>
#include <string>

#include "common/binary_io.hh"
#include "support/shared_db.hh"

namespace qosrm::workload {
namespace {

using qosrm::testing::shared_db;

std::string temp_path(const char* name) {
  return ::testing::TempDir() + name;
}

/// Enumerates the full finite (c, f, w) grid of the database's system.
std::vector<Setting> full_grid(const arch::SystemConfig& sys) {
  std::vector<Setting> settings;
  for (const arch::CoreSize c : arch::kAllCoreSizes) {
    for (int f = 0; f < arch::VfTable::kNumPoints; ++f) {
      for (int w = 1; w <= sys.llc.max_ways; ++w) settings.push_back({c, f, w});
    }
  }
  return settings;
}

/// Counts cells where the two databases disagree bitwise on timing or energy
/// (EXPECT per double would drown the output on a real regression).
int grid_mismatches(const SimDb& a, const SimDb& b) {
  int mismatches = 0;
  const std::vector<Setting> settings = full_grid(a.system());
  for (int app = 0; app < a.suite().size(); ++app) {
    for (int ph = 0; ph < a.num_phases(app); ++ph) {
      for (const Setting& s : settings) {
        const arch::IntervalTiming ta = a.timing(app, ph, s);
        const arch::IntervalTiming tb = b.timing(app, ph, s);
        if (ta.width_cycles != tb.width_cycles || ta.ilp_cycles != tb.ilp_cycles ||
            ta.branch_cycles != tb.branch_cycles ||
            ta.cache_cycles != tb.cache_cycles ||
            ta.core_seconds != tb.core_seconds ||
            ta.mem_seconds != tb.mem_seconds ||
            ta.total_seconds != tb.total_seconds) {
          ++mismatches;
        }
        const power::IntervalEnergy ea = a.energy(app, ph, s);
        const power::IntervalEnergy eb = b.energy(app, ph, s);
        if (ea.core_dynamic_j != eb.core_dynamic_j ||
            ea.core_static_j != eb.core_static_j || ea.memory_j != eb.memory_j) {
          ++mismatches;
        }
      }
      if (a.baseline_time(app, ph) != b.baseline_time(app, ph)) ++mismatches;
    }
    for (int w = a.system().llc.min_ways; w <= a.system().llc.max_ways; ++w) {
      if (a.app_mpki(app, w) != b.app_mpki(app, w)) ++mismatches;
    }
    for (const arch::CoreSize c : arch::kAllCoreSizes) {
      if (a.app_mlp(app, c) != b.app_mlp(app, c)) ++mismatches;
    }
  }
  return mismatches;
}

TEST(DbIo, RoundTripIsBitIdentical) {
  const SimDb& db = shared_db();
  const std::string path = temp_path("roundtrip.qosdb");
  std::string error;
  ASSERT_TRUE(save_simdb(db, path, &error)) << error;

  const std::optional<SimDb> loaded = load_simdb(
      db.suite(), db.system(), db.power(), db.phase_options(), path, &error);
  ASSERT_TRUE(loaded.has_value()) << error;
  EXPECT_EQ(grid_mismatches(db, *loaded), 0);
  std::remove(path.c_str());
}

TEST(DbIo, SavedBytesAreDeterministic) {
  const SimDb& db = shared_db();
  const std::string p1 = temp_path("det1.qosdb");
  const std::string p2 = temp_path("det2.qosdb");
  std::string error;
  ASSERT_TRUE(save_simdb(db, p1, &error)) << error;
  ASSERT_TRUE(save_simdb(db, p2, &error)) << error;

  std::ifstream f1(p1, std::ios::binary), f2(p2, std::ios::binary);
  const std::string b1((std::istreambuf_iterator<char>(f1)), {});
  const std::string b2((std::istreambuf_iterator<char>(f2)), {});
  EXPECT_FALSE(b1.empty());
  EXPECT_EQ(b1, b2);
  std::remove(p1.c_str());
  std::remove(p2.c_str());
}

TEST(DbIo, RejectsAlteredSystemConfig) {
  const SimDb& db = shared_db();
  const std::string path = temp_path("sysmismatch.qosdb");
  std::string error;
  ASSERT_TRUE(save_simdb(db, path, &error)) << error;

  arch::SystemConfig other_cores = db.system();
  other_cores.cores = db.system().cores + 1;
  EXPECT_FALSE(load_simdb(db.suite(), other_cores, db.power(),
                          db.phase_options(), path, &error)
                   .has_value());
  EXPECT_NE(error.find("stale"), std::string::npos) << error;

  arch::SystemConfig other_latency = db.system();
  other_latency.mem_latency_s *= 1.0 + 1e-12;  // even an LSB flip must reject
  error.clear();
  EXPECT_FALSE(load_simdb(db.suite(), other_latency, db.power(),
                          db.phase_options(), path, &error)
                   .has_value());
  EXPECT_FALSE(error.empty());
  std::remove(path.c_str());
}

TEST(DbIo, RejectsAlteredPhaseStatsOptions) {
  const SimDb& db = shared_db();
  const std::string path = temp_path("optmismatch.qosdb");
  std::string error;
  ASSERT_TRUE(save_simdb(db, path, &error)) << error;

  PhaseStatsOptions other = db.phase_options();
  other.mlp_index_bits += 1;
  EXPECT_FALSE(load_simdb(db.suite(), db.system(), db.power(), other, path, &error)
                   .has_value());
  EXPECT_NE(error.find("stale"), std::string::npos) << error;

  other = db.phase_options();
  other.synth.represented_instructions += 1.0;
  error.clear();
  EXPECT_FALSE(load_simdb(db.suite(), db.system(), db.power(), other, path, &error)
                   .has_value());
  EXPECT_FALSE(error.empty());
  std::remove(path.c_str());
}

TEST(DbIo, RejectsGarbageAndTruncatedFiles) {
  const SimDb& db = shared_db();
  std::string error;

  const std::string garbage = temp_path("garbage.qosdb");
  {
    std::ofstream out(garbage, std::ios::binary);
    out << "this is not a snapshot";
  }
  EXPECT_FALSE(load_simdb(db.suite(), db.system(), db.power(),
                          db.phase_options(), garbage, &error)
                   .has_value());
  EXPECT_FALSE(error.empty());
  std::remove(garbage.c_str());

  const std::string truncated = temp_path("truncated.qosdb");
  ASSERT_TRUE(save_simdb(db, truncated, &error)) << error;
  {
    std::ifstream in(truncated, std::ios::binary);
    std::string bytes((std::istreambuf_iterator<char>(in)), {});
    in.close();
    bytes.resize(bytes.size() / 2);
    std::ofstream out(truncated, std::ios::binary | std::ios::trunc);
    out << bytes;
  }
  error.clear();
  EXPECT_FALSE(load_simdb(db.suite(), db.system(), db.power(),
                          db.phase_options(), truncated, &error)
                   .has_value());
  EXPECT_FALSE(error.empty());
  std::remove(truncated.c_str());

  const std::string padded = temp_path("padded.qosdb");
  ASSERT_TRUE(save_simdb(db, padded, &error)) << error;
  {
    std::ofstream out(padded, std::ios::binary | std::ios::app);
    out << "trailing garbage";
  }
  error.clear();
  EXPECT_FALSE(load_simdb(db.suite(), db.system(), db.power(),
                          db.phase_options(), padded, &error)
                   .has_value());
  EXPECT_NE(error.find("trailing"), std::string::npos) << error;
  std::remove(padded.c_str());

  error.clear();
  EXPECT_FALSE(load_simdb(db.suite(), db.system(), db.power(),
                          db.phase_options(), temp_path("does_not_exist.qosdb"),
                          &error)
                   .has_value());
  EXPECT_FALSE(error.empty());
}

TEST(DbIo, RejectsFlippedPayloadBit) {
  const SimDb& db = shared_db();
  const std::string path = temp_path("bitflip.qosdb");
  std::string error;
  ASSERT_TRUE(save_simdb(db, path, &error)) << error;

  std::ifstream in(path, std::ios::binary);
  std::string bytes((std::istreambuf_iterator<char>(in)), {});
  in.close();
  ASSERT_GT(bytes.size(), 200u);
  bytes[bytes.size() / 2] = static_cast<char>(bytes[bytes.size() / 2] ^ 0x10);
  {
    std::ofstream out(path, std::ios::binary | std::ios::trunc);
    out << bytes;
  }
  EXPECT_FALSE(load_simdb(db.suite(), db.system(), db.power(),
                          db.phase_options(), path, &error)
                   .has_value());
  EXPECT_FALSE(error.empty());
  std::remove(path.c_str());
}

// A snapshot whose trailing checksum is internally consistent but whose
// phase arrays have the wrong shape (e.g. produced by a buggy external
// writer) must be rejected with an error, not abort inside EvalTable.
TEST(DbIo, RejectsShapeInvalidButChecksumConsistentFile) {
  const SimDb& db = shared_db();
  std::string error;

  // Steal the magic/version/BOM header prefix from a genuine snapshot.
  const std::string valid = temp_path("valid_for_magic.qosdb");
  ASSERT_TRUE(save_simdb(db, valid, &error)) << error;
  std::uint64_t magic = 0;
  {
    std::ifstream in(valid, std::ios::binary);
    in.read(reinterpret_cast<char*>(&magic), sizeof magic);
    ASSERT_TRUE(in.good());
  }
  std::remove(valid.c_str());

  const std::string crafted = temp_path("shape_invalid.qosdb");
  {
    std::ofstream out(crafted, std::ios::binary | std::ios::trunc);
    BinaryWriter w(out);
    w.write_u64(magic);
    w.write_u32(kSimDbSnapshotVersion);
    w.write_u32(kByteOrderMark);
    w.write_u64(simdb_fingerprint(db.suite(), db.system(), db.phase_options()));
    w.write_u32(static_cast<std::uint32_t>(db.suite().size()));
    for (int a = 0; a < db.suite().size(); ++a) {
      w.write_u32(static_cast<std::uint32_t>(db.num_phases(a)));
      for (int ph = 0; ph < db.num_phases(a); ++ph) {
        for (int vec = 0; vec < 7; ++vec) w.write_f64_vec({});  // empty arrays
        for (int scalar = 0; scalar < 7; ++scalar) w.write_f64(1.0);
      }
    }
    w.write_trailing_checksum();
    ASSERT_TRUE(w.good());
  }
  EXPECT_FALSE(load_simdb(db.suite(), db.system(), db.power(),
                          db.phase_options(), crafted, &error)
                   .has_value());
  EXPECT_NE(error.find("malformed"), std::string::npos) << error;
  std::remove(crafted.c_str());
}

TEST(DbIo, WarmSimDbBuildsThenLoads) {
  const std::string path = temp_path("warm.qosdb");
  std::remove(path.c_str());
  arch::SystemConfig system;
  system.cores = 2;
  const power::PowerModel power;

  DbCacheOutcome outcome = DbCacheOutcome::Built;
  const SimDb first =
      warm_simdb(spec_suite(), system, power, {}, path, &outcome);
  EXPECT_EQ(outcome, DbCacheOutcome::BuiltAndSaved);

  const SimDb second =
      warm_simdb(spec_suite(), system, power, {}, path, &outcome);
  EXPECT_EQ(outcome, DbCacheOutcome::Loaded);
  EXPECT_EQ(grid_mismatches(first, second), 0);

  // A stale snapshot (different system) is rejected and rebuilt, not reused.
  arch::SystemConfig other = system;
  other.cores = 3;
  const SimDb rebuilt = warm_simdb(spec_suite(), other, power, {}, path, &outcome);
  EXPECT_EQ(outcome, DbCacheOutcome::BuiltAndSaved);
  EXPECT_EQ(rebuilt.system().cores, 3);
  std::remove(path.c_str());
}

TEST(DbIo, SnapshotLoadIsFasterThanColdBuild) {
  using Clock = std::chrono::steady_clock;
  arch::SystemConfig system;
  system.cores = 2;
  const power::PowerModel power;
  const std::string path = temp_path("speed.qosdb");

  const auto t_build = Clock::now();
  const SimDb cold(spec_suite(), system, power);
  const double build_s = std::chrono::duration<double>(Clock::now() - t_build).count();

  std::string error;
  ASSERT_TRUE(save_simdb(cold, path, &error)) << error;

  double best_load_s = 1e300;
  for (int i = 0; i < 3; ++i) {
    const auto t_load = Clock::now();
    const std::optional<SimDb> loaded = load_simdb(
        spec_suite(), system, power, cold.phase_options(), path, &error);
    ASSERT_TRUE(loaded.has_value()) << error;
    best_load_s = std::min(
        best_load_s, std::chrono::duration<double>(Clock::now() - t_load).count());
  }
  // Loose bound: characterization takes seconds, a load takes milliseconds.
  // The acceptance target is >= 10x; in practice this is >100x.
  EXPECT_GT(build_s, 10.0 * best_load_s)
      << "build " << build_s << "s vs load " << best_load_s << "s";
  std::remove(path.c_str());
}

}  // namespace
}  // namespace qosrm::workload
