// Unit tests for the open-loop arrival-trace generator: determinism from
// the seed, rate calibration of all three patterns, burstiness ordering,
// strict spec parsing and fingerprint sensitivity.
#include "workload/arrival_gen.hh"

#include <cmath>
#include <vector>

#include <gtest/gtest.h>

namespace qosrm::workload {
namespace {

ArrivalGenOptions base_options() {
  ArrivalGenOptions options;
  options.load = 0.8;
  options.cores = 16;
  options.count = 20000;
  options.seed = 77;
  options.mean_service_time = 2.0;
  options.num_apps = 27;
  options.demand_min = 40;
  options.demand_max = 160;
  return options;
}

double nominal_rate(const ArrivalGenOptions& options) {
  return options.load * options.cores / options.mean_service_time;
}

/// Coefficient of variation of the inter-arrival times.
double interarrival_cv(const ArrivalTrace& trace) {
  double sum = 0.0, sum_sq = 0.0;
  const std::size_t n = trace.events.size() - 1;
  for (std::size_t i = 1; i < trace.events.size(); ++i) {
    const double gap = trace.events[i].time_s - trace.events[i - 1].time_s;
    sum += gap;
    sum_sq += gap * gap;
  }
  const double mean = sum / static_cast<double>(n);
  const double var = sum_sq / static_cast<double>(n) - mean * mean;
  return std::sqrt(var) / mean;
}

TEST(ArrivalGen, DeterministicFromSeed) {
  const ArrivalGenOptions options = base_options();
  const ArrivalTrace a = generate_arrivals(options);
  const ArrivalTrace b = generate_arrivals(options);
  ASSERT_EQ(a.events.size(), b.events.size());
  for (std::size_t i = 0; i < a.events.size(); ++i) {
    EXPECT_EQ(a.events[i].time_s, b.events[i].time_s) << "event " << i;
    EXPECT_EQ(a.events[i].app, b.events[i].app);
    EXPECT_EQ(a.events[i].demand_intervals, b.events[i].demand_intervals);
  }

  ArrivalGenOptions other = options;
  other.seed = options.seed + 1;
  const ArrivalTrace c = generate_arrivals(other);
  EXPECT_NE(a.events.front().time_s, c.events.front().time_s);
}

TEST(ArrivalGen, ReuseMatchesAllocatingForm) {
  const ArrivalGenOptions options = base_options();
  const ArrivalTrace fresh = generate_arrivals(options);
  ArrivalTrace reused;
  generate_arrivals_into(options, &reused);  // grow
  generate_arrivals_into(options, &reused);  // reuse at capacity
  ASSERT_EQ(fresh.events.size(), reused.events.size());
  for (std::size_t i = 0; i < fresh.events.size(); ++i) {
    EXPECT_EQ(fresh.events[i].time_s, reused.events[i].time_s) << "event " << i;
  }
}

TEST(ArrivalGen, EventsWellFormed) {
  for (const ArrivalPattern pattern :
       {ArrivalPattern::Poisson, ArrivalPattern::Bursty,
        ArrivalPattern::Diurnal}) {
    ArrivalGenOptions options = base_options();
    options.pattern = pattern;
    options.count = 2000;
    const ArrivalTrace trace = generate_arrivals(options);
    ASSERT_EQ(trace.events.size(), options.count);
    double prev = 0.0;
    for (const ArrivalEvent& event : trace.events) {
      EXPECT_GE(event.time_s, prev);
      EXPECT_GT(event.time_s, 0.0);
      EXPECT_GE(event.app, 0);
      EXPECT_LT(event.app, options.num_apps);
      EXPECT_GE(event.demand_intervals, options.demand_min);
      EXPECT_LE(event.demand_intervals, options.demand_max);
      prev = event.time_s;
    }
  }
}

TEST(ArrivalGen, AllPatternsHitTheCalibratedRate) {
  // The long-run rate of every pattern is lambda = load * cores / mst: the
  // bursty idle gaps and the diurnal thinning are both sized to preserve it.
  for (const ArrivalPattern pattern :
       {ArrivalPattern::Poisson, ArrivalPattern::Bursty,
        ArrivalPattern::Diurnal}) {
    ArrivalGenOptions options = base_options();
    options.pattern = pattern;
    const ArrivalTrace trace = generate_arrivals(options);
    const double span = trace.events.back().time_s;
    const double rate = static_cast<double>(options.count) / span;
    EXPECT_NEAR(rate / nominal_rate(options), 1.0, 0.1)
        << arrival_pattern_name(pattern);
  }
}

TEST(ArrivalGen, BurstyIsBurstierThanPoisson) {
  ArrivalGenOptions options = base_options();
  const ArrivalTrace poisson = generate_arrivals(options);
  options.pattern = ArrivalPattern::Bursty;
  const ArrivalTrace bursty = generate_arrivals(options);
  // Poisson inter-arrivals have CV ~ 1; geometric bursts with idle gaps
  // push the CV well above it.
  EXPECT_GT(interarrival_cv(bursty), 1.2 * interarrival_cv(poisson));
}

TEST(ArrivalGen, ParseAcceptsKnownPatterns) {
  const std::vector<ArrivalPattern> parsed =
      parse_arrival_patterns("poisson, bursty,diurnal");
  ASSERT_EQ(parsed.size(), 3u);
  EXPECT_EQ(parsed[0], ArrivalPattern::Poisson);
  EXPECT_EQ(parsed[1], ArrivalPattern::Bursty);
  EXPECT_EQ(parsed[2], ArrivalPattern::Diurnal);
}

TEST(ArrivalGenDeathTest, ParseRejectsBadSpecs) {
  EXPECT_DEATH((void)parse_arrival_patterns(""), "empty --arrivals entry");
  EXPECT_DEATH((void)parse_arrival_patterns("poisson,"),
               "empty --arrivals entry");
  EXPECT_DEATH((void)parse_arrival_patterns(",bursty"),
               "empty --arrivals entry");
  EXPECT_DEATH((void)parse_arrival_patterns("weibull"),
               "unknown arrival pattern");
}

TEST(ArrivalGenDeathTest, RejectsInvalidOptions) {
  ArrivalGenOptions options = base_options();
  options.load = 0.0;
  EXPECT_DEATH((void)generate_arrivals(options), "load");
  options = base_options();
  options.demand_max = options.demand_min - 1;
  EXPECT_DEATH((void)generate_arrivals(options), "demand");
  options = base_options();
  options.count = 0;
  EXPECT_DEATH((void)generate_arrivals(options), "count");
}

TEST(ArrivalGen, FingerprintCoversEveryField) {
  const ArrivalGenOptions base = base_options();
  const std::uint64_t fp = arrival_gen_fingerprint(base);
  EXPECT_EQ(fp, arrival_gen_fingerprint(base));

  const auto differs = [&](auto mutate) {
    ArrivalGenOptions options = base_options();
    mutate(options);
    return arrival_gen_fingerprint(options) != fp;
  };
  EXPECT_TRUE(differs([](auto& o) { o.pattern = ArrivalPattern::Bursty; }));
  EXPECT_TRUE(differs([](auto& o) { o.load = 0.9; }));
  EXPECT_TRUE(differs([](auto& o) { o.cores = 8; }));
  EXPECT_TRUE(differs([](auto& o) { o.count = 100; }));
  EXPECT_TRUE(differs([](auto& o) { o.seed = 1; }));
  EXPECT_TRUE(differs([](auto& o) { o.mean_service_time = 3.0; }));
  EXPECT_TRUE(differs([](auto& o) { o.num_apps = 5; }));
  EXPECT_TRUE(differs([](auto& o) { o.demand_min = 10; }));
  EXPECT_TRUE(differs([](auto& o) { o.demand_max = 200; }));
  EXPECT_TRUE(differs([](auto& o) { o.burst_mean_length = 8.0; }));
  EXPECT_TRUE(differs([](auto& o) { o.burst_rate_factor = 2.0; }));
  EXPECT_TRUE(differs([](auto& o) { o.diurnal_amplitude = 0.5; }));
  EXPECT_TRUE(differs([](auto& o) { o.diurnal_cycles = 2.0; }));
}

}  // namespace
}  // namespace qosrm::workload
