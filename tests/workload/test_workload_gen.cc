#include "workload/workload_gen.hh"

#include <gtest/gtest.h>

#include <set>

namespace qosrm::workload {
namespace {

using enum Category;

TEST(ScenarioOf, MatchesFigureOnePartition) {
  // Scenario 1: anything with CS-PS, plus CI-PS x CS-PI.
  EXPECT_EQ(scenario_of(CS_PS, CS_PS), Scenario::One);
  EXPECT_EQ(scenario_of(CS_PS, CS_PI), Scenario::One);
  EXPECT_EQ(scenario_of(CS_PS, CI_PS), Scenario::One);
  EXPECT_EQ(scenario_of(CS_PS, CI_PI), Scenario::One);
  EXPECT_EQ(scenario_of(CI_PS, CS_PI), Scenario::One);
  // Scenario 2: CS-PI with CS-PI or CI-PI.
  EXPECT_EQ(scenario_of(CS_PI, CS_PI), Scenario::Two);
  EXPECT_EQ(scenario_of(CS_PI, CI_PI), Scenario::Two);
  // Scenario 3: CI-PS with CI-PS or CI-PI.
  EXPECT_EQ(scenario_of(CI_PS, CI_PS), Scenario::Three);
  EXPECT_EQ(scenario_of(CI_PS, CI_PI), Scenario::Three);
  // Scenario 4: CI-PI only.
  EXPECT_EQ(scenario_of(CI_PI, CI_PI), Scenario::Four);
}

TEST(ScenarioOf, Symmetric) {
  const Category all[] = {CS_PS, CS_PI, CI_PS, CI_PI};
  for (const Category a : all) {
    for (const Category b : all) {
      EXPECT_EQ(scenario_of(a, b), scenario_of(b, a));
    }
  }
}

TEST(MixTable, PaperProbabilities) {
  // Populations of Table II: 5/7/7/8 over 27 apps.
  const MixTable t = compute_mix_table({5, 7, 7, 8});
  // Figure 1 cell probabilities (upper triangle values quoted in the paper).
  const auto p = [&](Category a, Category b) {
    return t.pair_prob[static_cast<std::size_t>(a)][static_cast<std::size_t>(b)];
  };
  EXPECT_NEAR(p(CI_PI, CI_PI), 0.088, 0.001);
  EXPECT_NEAR(p(CI_PI, CI_PS), 0.077, 0.001);
  EXPECT_NEAR(p(CI_PI, CS_PS), 0.055, 0.001);
  EXPECT_NEAR(p(CI_PS, CI_PS), 0.067, 0.001);
  EXPECT_NEAR(p(CS_PS, CS_PS), 0.034, 0.001);
}

TEST(MixTable, ScenarioWeightsMatchPaper) {
  // Paper Section V-A: 47 / 22.1 / 22.1 / 8.8 %.
  const MixTable t = compute_mix_table({5, 7, 7, 8});
  EXPECT_NEAR(t.scenario_weight[0], 0.470, 0.003);
  EXPECT_NEAR(t.scenario_weight[1], 0.221, 0.003);
  EXPECT_NEAR(t.scenario_weight[2], 0.221, 0.003);
  EXPECT_NEAR(t.scenario_weight[3], 0.088, 0.003);
}

TEST(MixTable, WeightsSumToOne) {
  const MixTable t = compute_mix_table({5, 7, 7, 8});
  double total = 0.0;
  for (const double w : t.scenario_weight) total += w;
  EXPECT_NEAR(total, 1.0, 1e-9);
}

TEST(WorkloadGen, CountAndNaming) {
  WorkloadGenOptions opt;
  opt.cores = 4;
  opt.per_scenario = 6;
  const auto mixes = generate_workloads(spec_suite(), opt);
  ASSERT_EQ(mixes.size(), 24u);
  EXPECT_EQ(mixes[0].name, "4Core-W1");
  EXPECT_EQ(mixes[23].name, "4Core-W24");
  // Scenario blocks in order: W1-6 S1, W7-12 S2, W13-18 S3, W19-24 S4.
  for (std::size_t i = 0; i < mixes.size(); ++i) {
    EXPECT_EQ(static_cast<int>(mixes[i].scenario), static_cast<int>(i / 6) + 1)
        << mixes[i].name;
  }
}

TEST(WorkloadGen, MixesRespectScenarioCategories) {
  WorkloadGenOptions opt;
  opt.cores = 8;
  opt.per_scenario = 6;
  const auto mixes = generate_workloads(spec_suite(), opt);
  for (const WorkloadMix& mix : mixes) {
    ASSERT_EQ(mix.app_ids.size(), 8u);
    // Each half draws from one category; the unordered half-pair must map
    // back to the mix's scenario.
    const Category cat1 = spec_suite().intended_category(mix.app_ids[0]);
    const Category cat2 = spec_suite().intended_category(mix.app_ids[4]);
    EXPECT_EQ(scenario_of(cat1, cat2), mix.scenario) << mix.name;
    for (int k = 0; k < 4; ++k) {
      EXPECT_EQ(spec_suite().intended_category(mix.app_ids[static_cast<std::size_t>(k)]),
                cat1);
      EXPECT_EQ(spec_suite().intended_category(
                    mix.app_ids[static_cast<std::size_t>(4 + k)]),
                cat2);
    }
  }
}

TEST(WorkloadGen, DeterministicInSeed) {
  WorkloadGenOptions opt;
  const auto a = generate_workloads(spec_suite(), opt);
  const auto b = generate_workloads(spec_suite(), opt);
  opt.seed = 999;
  const auto c = generate_workloads(spec_suite(), opt);
  ASSERT_EQ(a.size(), b.size());
  bool all_equal_ab = true;
  bool all_equal_ac = true;
  for (std::size_t i = 0; i < a.size(); ++i) {
    all_equal_ab &= a[i].app_ids == b[i].app_ids;
    all_equal_ac &= a[i].app_ids == c[i].app_ids;
  }
  EXPECT_TRUE(all_equal_ab);
  EXPECT_FALSE(all_equal_ac);
}

TEST(WorkloadGen, CoverageAcrossSuite) {
  // Paper: generation repeats until every application appears at least once
  // over all workloads. With 4+8 core suites, coverage should be wide.
  std::set<int> used;
  for (const int cores : {4, 8}) {
    WorkloadGenOptions opt;
    opt.cores = cores;
    for (const auto& mix : generate_workloads(spec_suite(), opt)) {
      used.insert(mix.app_ids.begin(), mix.app_ids.end());
    }
  }
  EXPECT_GE(used.size(), 24u);  // nearly all of the 27 applications
}

TEST(WorkloadGen, ReplicationPreservesScenarioAndCategoryHalves) {
  WorkloadGenOptions opt;
  opt.cores = 4;
  const auto mixes = generate_workloads(spec_suite(), opt);
  const auto scaled = replicate_workloads(mixes, 2);
  ASSERT_EQ(scaled.size(), mixes.size());
  for (std::size_t i = 0; i < mixes.size(); ++i) {
    const WorkloadMix& base = mixes[i];
    const WorkloadMix& big = scaled[i];
    EXPECT_EQ(big.scenario, base.scenario);
    EXPECT_EQ(big.name, base.name + "x2");
    ASSERT_EQ(big.app_ids.size(), base.app_ids.size() * 2);
    // Each half is the base half repeated, so the category composition of
    // both halves (and therefore the scenario) is preserved exactly.
    const std::size_t half = base.app_ids.size() / 2;
    for (std::size_t h = 0; h < 2; ++h) {
      for (std::size_t r = 0; r < 2; ++r) {
        for (std::size_t k = 0; k < half; ++k) {
          EXPECT_EQ(big.app_ids[2 * half * h + half * r + k],
                    base.app_ids[half * h + k]);
        }
      }
    }
  }
}

TEST(WorkloadGen, ReplicationFactorOneIsIdentity) {
  WorkloadGenOptions opt;
  opt.cores = 2;
  const auto mixes = generate_workloads(spec_suite(), opt);
  const auto same = replicate_workloads(mixes, 1);
  ASSERT_EQ(same.size(), mixes.size());
  for (std::size_t i = 0; i < mixes.size(); ++i) {
    EXPECT_EQ(same[i].name, mixes[i].name);  // no "x1" suffix
    EXPECT_EQ(same[i].app_ids, mixes[i].app_ids);
  }
}

TEST(WorkloadGen, ReplicationToSixteenCores) {
  WorkloadGenOptions opt;
  opt.cores = 4;
  const auto mixes = generate_workloads(spec_suite(), opt);
  const WorkloadMix big = replicate_mix(mixes.front(), 4);
  EXPECT_EQ(big.app_ids.size(), 16u);
  EXPECT_EQ(big.name, mixes.front().name + "x4");
  EXPECT_EQ(scenario_of(spec_suite().intended_category(big.app_ids.front()),
                        spec_suite().intended_category(big.app_ids.back())),
            big.scenario);
}

TEST(WorkloadGen, ScenarioFourIsAllCiPi) {
  WorkloadGenOptions opt;
  opt.cores = 4;
  for (const auto& mix : generate_workloads(spec_suite(), opt)) {
    if (mix.scenario != Scenario::Four) continue;
    for (const int app : mix.app_ids) {
      EXPECT_EQ(spec_suite().intended_category(app), CI_PI);
    }
  }
}

}  // namespace
}  // namespace qosrm::workload
