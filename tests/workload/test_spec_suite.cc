#include "workload/spec_suite.hh"

#include <gtest/gtest.h>

#include <set>

#include "support/shared_db.hh"
#include "workload/classify.hh"

namespace qosrm::workload {
namespace {

TEST(SpecSuite, TwentySevenApplications) {
  EXPECT_EQ(spec_suite().size(), 27);
}

TEST(SpecSuite, NamesUniqueAndLookupWorks) {
  const SpecSuite& suite = spec_suite();
  std::set<std::string> names;
  for (const AppProfile& app : suite.apps()) names.insert(app.name);
  EXPECT_EQ(names.size(), 27u);
  EXPECT_GE(suite.index_of("mcf"), 0);
  EXPECT_EQ(suite.index_of("calculix"), -1);  // excluded by the paper
  EXPECT_EQ(suite.index_of("milc"), -1);      // excluded by the paper
}

TEST(SpecSuite, IntendedPopulationsMatchTableII) {
  const SpecSuite& suite = spec_suite();
  EXPECT_EQ(suite.apps_in_category(Category::CS_PS).size(), 5u);
  EXPECT_EQ(suite.apps_in_category(Category::CS_PI).size(), 7u);
  EXPECT_EQ(suite.apps_in_category(Category::CI_PS).size(), 7u);
  EXPECT_EQ(suite.apps_in_category(Category::CI_PI).size(), 8u);
}

TEST(SpecSuite, EveryAppHasPhasesAndSequence) {
  for (const AppProfile& app : spec_suite().apps()) {
    EXPECT_GE(app.num_phases(), 3) << app.name;
    EXPECT_GE(app.length_intervals(), 20) << app.name;
    double weight = 0.0;
    for (const PhaseParams& ph : app.phases) weight += ph.weight;
    EXPECT_NEAR(weight, 1.0, 1e-9) << app.name;
    for (const int ph : app.phase_sequence) {
      EXPECT_GE(ph, 0);
      EXPECT_LT(ph, app.num_phases());
    }
  }
}

TEST(SpecSuite, ApplicationLengthsVary) {
  // The end-of-run rule depends on the longest app; lengths must differ.
  std::set<int> lengths;
  for (const AppProfile& app : spec_suite().apps()) {
    lengths.insert(app.length_intervals());
  }
  EXPECT_GE(lengths.size(), 8u);
}

TEST(SpecSuite, DeterministicConstruction) {
  const SpecSuite a;
  const SpecSuite b;
  for (int i = 0; i < a.size(); ++i) {
    EXPECT_EQ(a.app(i).name, b.app(i).name);
    EXPECT_EQ(a.app(i).trace_seed, b.app(i).trace_seed);
    EXPECT_EQ(a.app(i).phase_sequence, b.app(i).phase_sequence);
    for (int ph = 0; ph < a.app(i).num_phases(); ++ph) {
      EXPECT_DOUBLE_EQ(
          a.app(i).phases[static_cast<std::size_t>(ph)].lpki,
          b.app(i).phases[static_cast<std::size_t>(ph)].lpki);
    }
  }
}

// ---------------------------------------------------------------------------
// The headline suite property: applying the PAPER'S OWN criteria to the
// synthetic applications reproduces Table II exactly.
// ---------------------------------------------------------------------------
TEST(SpecSuite, ClassifierReproducesTableII) {
  const workload::SimDb& db = qosrm::testing::shared_db();
  const auto cls = classify_suite(db);
  for (int i = 0; i < db.suite().size(); ++i) {
    EXPECT_EQ(cls[static_cast<std::size_t>(i)].category(),
              db.suite().intended_category(i))
        << db.suite().app(i).name << " MPKI@8=" << cls[i].mpki_base
        << " lo/hi=" << cls[i].mpki_lo << "/" << cls[i].mpki_hi
        << " MLP S/M/L=" << cls[i].mlp_s << "/" << cls[i].mlp_m << "/"
        << cls[i].mlp_l;
  }
}

TEST(SpecSuite, CategoryHistogramMatchesPaperCounts) {
  const workload::SimDb& db = qosrm::testing::shared_db();
  const auto hist = category_histogram(classify_suite(db));
  EXPECT_EQ(hist[static_cast<std::size_t>(Category::CS_PS)], 5);
  EXPECT_EQ(hist[static_cast<std::size_t>(Category::CS_PI)], 7);
  EXPECT_EQ(hist[static_cast<std::size_t>(Category::CI_PS)], 7);
  EXPECT_EQ(hist[static_cast<std::size_t>(Category::CI_PI)], 8);
}

}  // namespace
}  // namespace qosrm::workload
