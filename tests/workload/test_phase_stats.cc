#include "workload/phase_stats.hh"

#include <gtest/gtest.h>

#include "arch/dvfs.hh"

namespace qosrm::workload {
namespace {

PhaseParams ps_phase() {
  PhaseParams p;
  p.lpki = 8.0;
  p.reuse = make_stack_profile(0.35, 0.45, 8.0, 2.0, 0.2);
  p.dep_frac = 0.05;
  p.burst_size = 12.0;
  p.intra_gap = 15.0;
  p.ilp = 3.5;
  p.cpi_branch = 0.05;
  p.cpi_cache = 0.12;
  return p;
}

PhaseParams chained_phase() {
  PhaseParams p = ps_phase();
  p.dep_frac = 0.85;
  p.burst_size = 4.0;
  p.intra_gap = 35.0;
  return p;
}

arch::SystemConfig sys2() {
  arch::SystemConfig s;
  s.cores = 2;
  return s;
}

TEST(PhaseStats, CountsScaleToInterval) {
  const PhaseStats st = characterize_phase(ps_phase(), sys2(), {}, 1);
  EXPECT_DOUBLE_EQ(st.interval_instructions, 100e6);
  EXPECT_GT(st.scale, 1.0);
  // lpki 8 -> about 800K accesses per 100M-instruction interval.
  EXPECT_NEAR(st.llc_accesses, 800e3, 160e3);
}

TEST(PhaseStats, MissCurveMonotone) {
  const PhaseStats st = characterize_phase(ps_phase(), sys2(), {}, 2);
  for (int w = 2; w <= st.max_ways(); ++w) {
    EXPECT_LE(st.misses[static_cast<std::size_t>(w - 1)],
              st.misses[static_cast<std::size_t>(w - 2)]);
  }
}

TEST(PhaseStats, LeadingBoundedByTotalMisses) {
  const PhaseStats st = characterize_phase(ps_phase(), sys2(), {}, 3);
  for (int c = 0; c < arch::kNumCoreSizes; ++c) {
    for (int w = 1; w <= st.max_ways(); ++w) {
      const auto wi = static_cast<std::size_t>(w - 1);
      EXPECT_LE(st.lm_true[static_cast<std::size_t>(c)][wi], st.misses[wi] + 1e-9);
      EXPECT_LE(st.lm_atd[static_cast<std::size_t>(c)][wi], st.misses[wi] + 1e-9);
    }
  }
}

TEST(PhaseStats, BurstyPhaseHasGrowingMlp) {
  const PhaseStats st = characterize_phase(ps_phase(), sys2(), {}, 4);
  const double mlp_s = st.mlp_true(arch::CoreSize::S, 8);
  const double mlp_m = st.mlp_true(arch::CoreSize::M, 8);
  const double mlp_l = st.mlp_true(arch::CoreSize::L, 8);
  EXPECT_GT(mlp_m, mlp_s * 1.15);
  EXPECT_GT(mlp_l, mlp_m * 1.15);
  EXPECT_GE(mlp_l, 2.0);
}

TEST(PhaseStats, ChainedPhaseHasFlatLowMlp) {
  const PhaseStats st = characterize_phase(chained_phase(), sys2(), {}, 5);
  const double mlp_s = st.mlp_true(arch::CoreSize::S, 8);
  const double mlp_l = st.mlp_true(arch::CoreSize::L, 8);
  EXPECT_LT(mlp_l, 2.2);
  EXPECT_LT(mlp_l - mlp_s, 0.5);
}

TEST(PhaseStats, AtdEstimateTracksOracle) {
  const PhaseStats st = characterize_phase(ps_phase(), sys2(), {}, 6);
  // The hardware heuristic should stay within ~35% of the oracle at the
  // baseline configuration where the arrival stream is exact.
  for (const arch::CoreSize c : arch::kAllCoreSizes) {
    const auto ci = static_cast<std::size_t>(arch::core_size_index(c));
    const double atd = st.lm_atd[ci][7];
    const double oracle = st.lm_true[ci][7];
    EXPECT_NEAR(atd, oracle, oracle * 0.35) << core_size_name(c);
  }
}

TEST(PhaseStats, MpkiConsistentWithMisses) {
  const PhaseStats st = characterize_phase(ps_phase(), sys2(), {}, 7);
  EXPECT_NEAR(st.mpki(8), st.misses[7] / (st.interval_instructions / 1000.0),
              1e-9);
}

TEST(PhaseStats, CharacteristicsViewCopiesCoreParams) {
  const PhaseParams p = ps_phase();
  const PhaseStats st = characterize_phase(p, sys2(), {}, 8);
  const arch::IntervalCharacteristics c = st.characteristics();
  EXPECT_DOUBLE_EQ(c.ilp, p.ilp);
  EXPECT_DOUBLE_EQ(c.cpi_branch, p.cpi_branch);
  EXPECT_DOUBLE_EQ(c.cpi_private_cache, p.cpi_cache);
  EXPECT_DOUBLE_EQ(c.instructions, 100e6);
}

TEST(PhaseStats, MemoryTruthSelectsPerSetting) {
  const PhaseStats st = characterize_phase(ps_phase(), sys2(), {}, 9);
  const auto mem_s2 = st.memory_truth(arch::CoreSize::S, 2, 130e-9);
  const auto mem_l16 = st.memory_truth(arch::CoreSize::L, 16, 130e-9);
  EXPECT_GT(mem_s2.llc_misses, mem_l16.llc_misses);
  EXPECT_GT(mem_s2.leading_misses, mem_l16.leading_misses);
  EXPECT_DOUBLE_EQ(mem_s2.mem_latency_s, 130e-9);
}

TEST(PhaseStats, DeterministicAcrossCalls) {
  const PhaseStats a = characterize_phase(ps_phase(), sys2(), {}, 10);
  const PhaseStats b = characterize_phase(ps_phase(), sys2(), {}, 10);
  EXPECT_EQ(a.misses, b.misses);
  for (int c = 0; c < arch::kNumCoreSizes; ++c) {
    EXPECT_EQ(a.lm_true[static_cast<std::size_t>(c)],
              b.lm_true[static_cast<std::size_t>(c)]);
    EXPECT_EQ(a.lm_atd[static_cast<std::size_t>(c)],
              b.lm_atd[static_cast<std::size_t>(c)]);
  }
}

}  // namespace
}  // namespace qosrm::workload
