#include "workload/sim_db.hh"

#include <gtest/gtest.h>

#include <cstdint>
#include <span>
#include <vector>

#include "support/shared_db.hh"

namespace qosrm::workload {
namespace {

const SimDb& db() { return qosrm::testing::shared_db(); }

TEST(SimDb, BaselineSettingMatchesTableI) {
  const Setting base = baseline_setting(db().system());
  EXPECT_EQ(base.c, arch::kBaselineCoreSize);
  EXPECT_EQ(base.f_idx, arch::VfTable::kBaselineIndex);
  EXPECT_EQ(base.w, 8);
}

TEST(SimDb, EveryPhaseCharacterized) {
  for (int a = 0; a < db().suite().size(); ++a) {
    EXPECT_EQ(db().num_phases(a), db().suite().app(a).num_phases());
    for (int ph = 0; ph < db().num_phases(a); ++ph) {
      EXPECT_GT(db().stats(a, ph).llc_accesses, 0.0);
    }
  }
}

TEST(SimDb, TimingFasterWithMoreWaysForCacheSensitiveApp) {
  const int mcf = db().suite().index_of("mcf");
  ASSERT_GE(mcf, 0);
  const Setting base = baseline_setting(db().system());
  Setting more = base;
  more.w = 14;
  Setting fewer = base;
  fewer.w = 3;
  EXPECT_LT(db().timing(mcf, 0, more).total_seconds,
            db().timing(mcf, 0, base).total_seconds);
  EXPECT_GT(db().timing(mcf, 0, fewer).total_seconds,
            db().timing(mcf, 0, base).total_seconds);
}

TEST(SimDb, TimingFasterAtHigherFrequency) {
  const Setting base = baseline_setting(db().system());
  Setting fast = base;
  fast.f_idx = arch::VfTable::kNumPoints - 1;
  Setting slow = base;
  slow.f_idx = 0;
  for (const int a : {0, 10, 20}) {
    EXPECT_LT(db().timing(a, 0, fast).total_seconds,
              db().timing(a, 0, base).total_seconds);
    EXPECT_GT(db().timing(a, 0, slow).total_seconds,
              db().timing(a, 0, base).total_seconds);
  }
}

TEST(SimDb, EnergyComponentsPositiveAndComposable) {
  const Setting base = baseline_setting(db().system());
  for (const int a : {1, 13, 26}) {
    const power::IntervalEnergy e = db().energy(a, 0, base);
    EXPECT_GT(e.core_dynamic_j, 0.0);
    EXPECT_GT(e.core_static_j, 0.0);
    EXPECT_GE(e.memory_j, 0.0);
    EXPECT_NEAR(e.total_j(), e.core_dynamic_j + e.core_static_j + e.memory_j,
                1e-15);
  }
}

TEST(SimDb, HigherVoltageCostsMoreDynamicEnergy) {
  const Setting base = baseline_setting(db().system());
  Setting fast = base;
  fast.f_idx = arch::VfTable::kNumPoints - 1;
  const int mcf = db().suite().index_of("mcf");
  EXPECT_GT(db().energy(mcf, 0, fast).core_dynamic_j,
            db().energy(mcf, 0, base).core_dynamic_j);
}

TEST(SimDb, BaselineTimeIsConsistent) {
  const Setting base = baseline_setting(db().system());
  for (int a = 0; a < db().suite().size(); a += 5) {
    EXPECT_DOUBLE_EQ(db().baseline_time(a, 0),
                     db().timing(a, 0, base).total_seconds);
  }
}

TEST(SimDb, AppMpkiAggregatesPhases) {
  const int mcf = db().suite().index_of("mcf");
  const double mpki8 = db().app_mpki(mcf, 8);
  EXPECT_GT(mpki8, 0.2);
  // Aggregate must be within the per-phase min/max envelope.
  double lo = 1e300, hi = 0.0;
  for (int ph = 0; ph < db().num_phases(mcf); ++ph) {
    lo = std::min(lo, db().stats(mcf, ph).mpki(8));
    hi = std::max(hi, db().stats(mcf, ph).mpki(8));
  }
  EXPECT_GE(mpki8, lo);
  EXPECT_LE(mpki8, hi);
}

TEST(SimDb, AppMlpOrderedByCoreSizeForStreamingApp) {
  const int bwaves = db().suite().index_of("bwaves");
  EXPECT_GT(db().app_mlp(bwaves, arch::CoreSize::M),
            db().app_mlp(bwaves, arch::CoreSize::S));
  EXPECT_GT(db().app_mlp(bwaves, arch::CoreSize::L),
            db().app_mlp(bwaves, arch::CoreSize::M));
}

// The materialized evaluation table must be bit-identical to evaluating the
// analytical models directly from the phase characterization, over the FULL
// finite (c, f, w) grid (this is the refactor's correctness contract).
TEST(SimDb, TableMatchesDirectEvaluationOverFullGrid) {
  const SimDb& d = db();
  const arch::SystemConfig& sys = d.system();
  int timing_mismatches = 0;
  int energy_mismatches = 0;
  for (int app = 0; app < d.suite().size(); ++app) {
    for (int ph = 0; ph < d.num_phases(app); ++ph) {
      const PhaseStats& st = d.stats(app, ph);
      for (const arch::CoreSize c : arch::kAllCoreSizes) {
        for (int f = 0; f < arch::VfTable::kNumPoints; ++f) {
          for (int w = 1; w <= sys.llc.max_ways; ++w) {
            const Setting s{c, f, w};
            const arch::IntervalTiming direct = arch::evaluate_interval(
                st.characteristics(), st.memory_truth(c, w, sys.mem_latency_s),
                c, arch::VfTable::frequency_hz(f));
            const arch::IntervalTiming table = d.timing(app, ph, s);
            if (table.width_cycles != direct.width_cycles ||
                table.ilp_cycles != direct.ilp_cycles ||
                table.branch_cycles != direct.branch_cycles ||
                table.cache_cycles != direct.cache_cycles ||
                table.core_seconds != direct.core_seconds ||
                table.mem_seconds != direct.mem_seconds ||
                table.total_seconds != direct.total_seconds) {
              ++timing_mismatches;
            }
            const power::IntervalEnergy e_direct = d.power().interval_energy(
                c, arch::VfTable::point(f), direct, st.interval_instructions,
                st.dram_accesses(w));
            const power::IntervalEnergy e_table = d.energy(app, ph, s);
            if (e_table.core_dynamic_j != e_direct.core_dynamic_j ||
                e_table.core_static_j != e_direct.core_static_j ||
                e_table.memory_j != e_direct.memory_j) {
              ++energy_mismatches;
            }
          }
        }
      }
    }
  }
  EXPECT_EQ(timing_mismatches, 0);
  EXPECT_EQ(energy_mismatches, 0);
}

// The SoA companion columns (scalar accessors and contiguous w-rows) must be
// bit-identical to the corresponding fields of the AoS outcome structs over
// the full grid - they are filled from exactly those fields at build time and
// the batched LocalOptimizer sweep depends on the equivalence.
TEST(SimDb, SoaAccessorsMatchStructLookupsOverFullGrid) {
  const SimDb& d = db();
  const arch::SystemConfig& sys = d.system();
  int mismatches = 0;
  for (int app = 0; app < d.suite().size(); ++app) {
    for (int ph = 0; ph < d.num_phases(app); ++ph) {
      for (const arch::CoreSize c : arch::kAllCoreSizes) {
        for (int f = 0; f < arch::VfTable::kNumPoints; ++f) {
          const std::span<const double> t_row =
              d.total_seconds_row(app, ph, c, f);
          const std::span<const double> m_row =
              d.mem_seconds_row(app, ph, c, f);
          ASSERT_EQ(static_cast<int>(t_row.size()), sys.llc.max_ways);
          for (int w = 1; w <= sys.llc.max_ways; ++w) {
            const Setting s{c, f, w};
            const arch::IntervalTiming t = d.timing(app, ph, s);
            const power::IntervalEnergy e = d.energy(app, ph, s);
            if (d.total_seconds(app, ph, s) != t.total_seconds ||
                d.mem_seconds(app, ph, s) != t.mem_seconds ||
                d.core_joules(app, ph, s) != e.core_j() ||
                d.total_joules(app, ph, s) != e.total_j() ||
                t_row[static_cast<std::size_t>(w - 1)] != t.total_seconds ||
                m_row[static_cast<std::size_t>(w - 1)] != t.mem_seconds) {
              ++mismatches;
            }
          }
        }
      }
    }
  }
  EXPECT_EQ(mismatches, 0);
}

// Interval keys are the memo's identity: distinct (app, phase, c, f, clamped
// w) cells must get distinct dense keys inside [0, interval_key_space()), and
// way-clamped settings must share the key of the cell they resolve to.
TEST(SimDb, IntervalKeysAreDenseAndUnique) {
  const SimDb& d = db();
  const arch::SystemConfig& sys = d.system();
  std::vector<std::uint8_t> seen(
      static_cast<std::size_t>(d.interval_key_space()), 0);
  for (int app = 0; app < d.suite().size(); ++app) {
    for (int ph = 0; ph < d.num_phases(app); ++ph) {
      for (const arch::CoreSize c : arch::kAllCoreSizes) {
        for (int f = 0; f < arch::VfTable::kNumPoints; ++f) {
          for (int w = 1; w <= sys.llc.max_ways; ++w) {
            const std::int64_t key = d.interval_key(app, ph, {c, f, w});
            ASSERT_GE(key, 0);
            ASSERT_LT(key, d.interval_key_space());
            ASSERT_EQ(seen[static_cast<std::size_t>(key)], 0)
                << "duplicate key for app " << app << " phase " << ph;
            seen[static_cast<std::size_t>(key)] = 1;
          }
        }
      }
      // A clamped way count resolves to the same cell, hence the same key.
      EXPECT_EQ(d.interval_key(app, ph,
                               {arch::CoreSize::M, 0, sys.llc.max_ways + 5}),
                d.interval_key(app, ph, {arch::CoreSize::M, 0, sys.llc.max_ways}));
    }
  }
}

TEST(SimDb, CachedAggregatesMatchPerPhaseRecomputation) {
  const SimDb& d = db();
  for (int app = 0; app < d.suite().size(); app += 3) {
    for (int w = 1; w <= d.system().llc.max_ways; ++w) {
      double acc = 0.0;
      for (int ph = 0; ph < d.num_phases(app); ++ph) {
        acc += d.suite().app(app).phases[static_cast<std::size_t>(ph)].weight *
               d.stats(app, ph).mpki(w);
      }
      EXPECT_EQ(d.app_mpki(app, w), acc);
    }
    for (const arch::CoreSize c : arch::kAllCoreSizes) {
      double acc = 0.0;
      const int wb = d.system().llc.ways_per_core_baseline;
      for (int ph = 0; ph < d.num_phases(app); ++ph) {
        acc += d.suite().app(app).phases[static_cast<std::size_t>(ph)].weight *
               d.stats(app, ph).mlp_true(c, wb);
      }
      EXPECT_EQ(d.app_mlp(app, c), acc);
    }
    for (int ph = 0; ph < d.num_phases(app); ++ph) {
      EXPECT_EQ(d.baseline_time(app, ph),
                d.timing(app, ph, baseline_setting(d.system())).total_seconds);
    }
  }
}

TEST(SimDb, SerialBuildMatchesParallelBuild) {
  arch::SystemConfig sys;
  sys.cores = 2;
  const power::PowerModel power;
  SimDbOptions serial;
  serial.threads = 1;
  const SimDb db_serial(spec_suite(), sys, power, serial);
  const Setting base = baseline_setting(sys);
  for (const int a : {0, 9, 18}) {
    EXPECT_DOUBLE_EQ(db_serial.timing(a, 0, base).total_seconds,
                     db().timing(a, 0, base).total_seconds);
  }
}

}  // namespace
}  // namespace qosrm::workload
