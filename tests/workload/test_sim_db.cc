#include "workload/sim_db.hh"

#include <gtest/gtest.h>

#include "support/shared_db.hh"

namespace qosrm::workload {
namespace {

const SimDb& db() { return qosrm::testing::shared_db(); }

TEST(SimDb, BaselineSettingMatchesTableI) {
  const Setting base = baseline_setting(db().system());
  EXPECT_EQ(base.c, arch::kBaselineCoreSize);
  EXPECT_EQ(base.f_idx, arch::VfTable::kBaselineIndex);
  EXPECT_EQ(base.w, 8);
}

TEST(SimDb, EveryPhaseCharacterized) {
  for (int a = 0; a < db().suite().size(); ++a) {
    EXPECT_EQ(db().num_phases(a), db().suite().app(a).num_phases());
    for (int ph = 0; ph < db().num_phases(a); ++ph) {
      EXPECT_GT(db().stats(a, ph).llc_accesses, 0.0);
    }
  }
}

TEST(SimDb, TimingFasterWithMoreWaysForCacheSensitiveApp) {
  const int mcf = db().suite().index_of("mcf");
  ASSERT_GE(mcf, 0);
  const Setting base = baseline_setting(db().system());
  Setting more = base;
  more.w = 14;
  Setting fewer = base;
  fewer.w = 3;
  EXPECT_LT(db().timing(mcf, 0, more).total_seconds,
            db().timing(mcf, 0, base).total_seconds);
  EXPECT_GT(db().timing(mcf, 0, fewer).total_seconds,
            db().timing(mcf, 0, base).total_seconds);
}

TEST(SimDb, TimingFasterAtHigherFrequency) {
  const Setting base = baseline_setting(db().system());
  Setting fast = base;
  fast.f_idx = arch::VfTable::kNumPoints - 1;
  Setting slow = base;
  slow.f_idx = 0;
  for (const int a : {0, 10, 20}) {
    EXPECT_LT(db().timing(a, 0, fast).total_seconds,
              db().timing(a, 0, base).total_seconds);
    EXPECT_GT(db().timing(a, 0, slow).total_seconds,
              db().timing(a, 0, base).total_seconds);
  }
}

TEST(SimDb, EnergyComponentsPositiveAndComposable) {
  const Setting base = baseline_setting(db().system());
  for (const int a : {1, 13, 26}) {
    const power::IntervalEnergy e = db().energy(a, 0, base);
    EXPECT_GT(e.core_dynamic_j, 0.0);
    EXPECT_GT(e.core_static_j, 0.0);
    EXPECT_GE(e.memory_j, 0.0);
    EXPECT_NEAR(e.total_j(), e.core_dynamic_j + e.core_static_j + e.memory_j,
                1e-15);
  }
}

TEST(SimDb, HigherVoltageCostsMoreDynamicEnergy) {
  const Setting base = baseline_setting(db().system());
  Setting fast = base;
  fast.f_idx = arch::VfTable::kNumPoints - 1;
  const int mcf = db().suite().index_of("mcf");
  EXPECT_GT(db().energy(mcf, 0, fast).core_dynamic_j,
            db().energy(mcf, 0, base).core_dynamic_j);
}

TEST(SimDb, BaselineTimeIsConsistent) {
  const Setting base = baseline_setting(db().system());
  for (int a = 0; a < db().suite().size(); a += 5) {
    EXPECT_DOUBLE_EQ(db().baseline_time(a, 0),
                     db().timing(a, 0, base).total_seconds);
  }
}

TEST(SimDb, AppMpkiAggregatesPhases) {
  const int mcf = db().suite().index_of("mcf");
  const double mpki8 = db().app_mpki(mcf, 8);
  EXPECT_GT(mpki8, 0.2);
  // Aggregate must be within the per-phase min/max envelope.
  double lo = 1e300, hi = 0.0;
  for (int ph = 0; ph < db().num_phases(mcf); ++ph) {
    lo = std::min(lo, db().stats(mcf, ph).mpki(8));
    hi = std::max(hi, db().stats(mcf, ph).mpki(8));
  }
  EXPECT_GE(mpki8, lo);
  EXPECT_LE(mpki8, hi);
}

TEST(SimDb, AppMlpOrderedByCoreSizeForStreamingApp) {
  const int bwaves = db().suite().index_of("bwaves");
  EXPECT_GT(db().app_mlp(bwaves, arch::CoreSize::M),
            db().app_mlp(bwaves, arch::CoreSize::S));
  EXPECT_GT(db().app_mlp(bwaves, arch::CoreSize::L),
            db().app_mlp(bwaves, arch::CoreSize::M));
}

TEST(SimDb, SerialBuildMatchesParallelBuild) {
  arch::SystemConfig sys;
  sys.cores = 2;
  const power::PowerModel power;
  SimDbOptions serial;
  serial.threads = 1;
  const SimDb db_serial(spec_suite(), sys, power, serial);
  const Setting base = baseline_setting(sys);
  for (const int a : {0, 9, 18}) {
    EXPECT_DOUBLE_EQ(db_serial.timing(a, 0, base).total_seconds,
                     db().timing(a, 0, base).total_seconds);
  }
}

}  // namespace
}  // namespace qosrm::workload
