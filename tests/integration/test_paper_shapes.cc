// Reproduction-shape assertions: the qualitative results of the paper's
// evaluation section must hold on generated workloads. These are the
// "who wins, by roughly what factor" checks of DESIGN.md.
#include <gtest/gtest.h>

#include <map>

#include "rmsim/experiment.hh"
#include "support/shared_db.hh"

namespace qosrm::rmsim {
namespace {

using workload::Scenario;

const workload::SimDb& db() { return qosrm::testing::shared_db(); }

rm::RmConfig cfg(rm::RmPolicy policy) {
  rm::RmConfig c;
  c.policy = policy;
  c.model = rm::PerfModelKind::Model3;
  return c;
}

/// Mean savings per scenario per policy over a small generated 2-core suite.
class PaperShapes : public ::testing::Test {
 protected:
  static void SetUpTestSuite() {
    runner_ = new ExperimentRunner(db());
    workload::WorkloadGenOptions opt;
    opt.cores = 2;
    opt.per_scenario = 3;
    const auto mixes = generate_workloads(workload::spec_suite(), opt);
    for (const auto& mix : mixes) {
      for (const rm::RmPolicy policy :
           {rm::RmPolicy::Rm1, rm::RmPolicy::Rm2, rm::RmPolicy::Rm3}) {
        const double s = runner_->run(mix, cfg(policy)).savings;
        sums_[{mix.scenario, policy}] += s;
        counts_[{mix.scenario, policy}] += 1;
      }
    }
  }
  static void TearDownTestSuite() {
    delete runner_;
    runner_ = nullptr;
  }

  static double mean(Scenario s, rm::RmPolicy p) {
    return sums_[{s, p}] / counts_[{s, p}];
  }

  static ExperimentRunner* runner_;
  static std::map<std::pair<Scenario, rm::RmPolicy>, double> sums_;
  static std::map<std::pair<Scenario, rm::RmPolicy>, int> counts_;
};

ExperimentRunner* PaperShapes::runner_ = nullptr;
std::map<std::pair<Scenario, rm::RmPolicy>, double> PaperShapes::sums_;
std::map<std::pair<Scenario, rm::RmPolicy>, int> PaperShapes::counts_;

TEST_F(PaperShapes, Scenario1Rm3BeatsRm2Clearly) {
  // Paper Fig. 2/6: RM3 well above RM2 whenever CS-PS applications are in
  // the mix (70% relative in Fig. 2; 60% or more in several Fig. 6 bars).
  const double rm2 = mean(Scenario::One, rm::RmPolicy::Rm2);
  const double rm3 = mean(Scenario::One, rm::RmPolicy::Rm3);
  EXPECT_GT(rm3, rm2 * 1.3);
  EXPECT_GT(rm3, 0.05);
}

TEST_F(PaperShapes, Scenario2Rm2AndRm3Comparable) {
  const double rm2 = mean(Scenario::Two, rm::RmPolicy::Rm2);
  const double rm3 = mean(Scenario::Two, rm::RmPolicy::Rm3);
  EXPECT_NEAR(rm3, rm2, std::max(0.035, rm2 * 0.8));
}

TEST_F(PaperShapes, Scenario3OnlyRm3Effective) {
  // Paper: RM1/RM2 are NOT effective (apps insensitive to LLC allocation);
  // RM3 saves substantially (8.5% vs 1.7% average in Fig. 6 terms).
  EXPECT_LT(mean(Scenario::Three, rm::RmPolicy::Rm1), 0.02);
  EXPECT_LT(mean(Scenario::Three, rm::RmPolicy::Rm2), 0.02);
  EXPECT_GT(mean(Scenario::Three, rm::RmPolicy::Rm3), 0.04);
  EXPECT_GT(mean(Scenario::Three, rm::RmPolicy::Rm3),
            mean(Scenario::Three, rm::RmPolicy::Rm2) + 0.03);
}

TEST_F(PaperShapes, Scenario4NothingWorks) {
  for (const rm::RmPolicy policy :
       {rm::RmPolicy::Rm1, rm::RmPolicy::Rm2, rm::RmPolicy::Rm3}) {
    EXPECT_LT(mean(Scenario::Four, policy), 0.02);
    EXPECT_GT(mean(Scenario::Four, policy), -0.02);
  }
}

TEST_F(PaperShapes, Rm1WeakestOverall) {
  for (const Scenario s :
       {Scenario::One, Scenario::Two, Scenario::Three, Scenario::Four}) {
    EXPECT_LE(mean(s, rm::RmPolicy::Rm1),
              mean(s, rm::RmPolicy::Rm3) + 0.01);
  }
}

TEST_F(PaperShapes, WeightedAverageInPaperBand) {
  // Paper: ~10% average savings for RM3 with weights 47/22.1/22.1/8.8.
  const auto weights = scenario_weights(workload::spec_suite());
  std::vector<workload::Scenario> scen;
  std::vector<double> savings;
  for (const Scenario s :
       {Scenario::One, Scenario::Two, Scenario::Three, Scenario::Four}) {
    scen.push_back(s);
    savings.push_back(mean(s, rm::RmPolicy::Rm3));
  }
  const double avg = weighted_average_savings(scen, savings, weights);
  EXPECT_GT(avg, 0.05);
  EXPECT_LT(avg, 0.20);
}

}  // namespace
}  // namespace qosrm::rmsim
