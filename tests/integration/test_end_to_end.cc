// End-to-end integration: full workloads through database, RMs and the
// interval simulator, checking cross-module invariants.
#include <gtest/gtest.h>

#include "rmsim/experiment.hh"
#include "support/shared_db.hh"
#include "workload/classify.hh"

namespace qosrm::rmsim {
namespace {

const workload::SimDb& db() { return qosrm::testing::shared_db(); }

rm::RmConfig cfg(rm::RmPolicy policy,
                 rm::PerfModelKind model = rm::PerfModelKind::Model3) {
  rm::RmConfig c;
  c.policy = policy;
  c.model = model;
  return c;
}

workload::WorkloadMix first_mix_of(workload::Scenario scenario, int cores) {
  workload::WorkloadGenOptions opt;
  opt.cores = cores;
  opt.per_scenario = 1;
  for (const auto& mix : generate_workloads(workload::spec_suite(), opt)) {
    if (mix.scenario == scenario) return mix;
  }
  ADD_FAILURE() << "no mix for scenario";
  return {};
}

TEST(EndToEnd, TwoCoreGeneratedWorkloadsRunUnderEveryPolicy) {
  ExperimentRunner runner(db());
  for (const workload::Scenario s :
       {workload::Scenario::One, workload::Scenario::Three}) {
    const auto mix = first_mix_of(s, 2);
    for (const rm::RmPolicy policy :
         {rm::RmPolicy::Rm1, rm::RmPolicy::Rm2, rm::RmPolicy::Rm3}) {
      const SavingsResult r = runner.run(mix, cfg(policy));
      EXPECT_GT(r.run.total_energy_j(), 0.0);
      // Savings in a sane band: active RMs never cost more than 3% extra nor
      // save more than 35%.
      EXPECT_GT(r.savings, -0.03) << mix.name << rm_policy_name(policy);
      EXPECT_LT(r.savings, 0.35) << mix.name << rm_policy_name(policy);
    }
  }
}

TEST(EndToEnd, ViolationRateStaysLow) {
  // The paper claims a "low likelihood of violating QoS"; with Model3 the
  // per-interval violation rate must stay in the low percent range and the
  // mean magnitude small.
  ExperimentRunner runner(db());
  const auto mix = first_mix_of(workload::Scenario::One, 2);
  const SavingsResult r = runner.run(mix, cfg(rm::RmPolicy::Rm3));
  EXPECT_LT(r.run.violation_rate(), 0.35);
  double sum = 0.0;
  for (const CoreResult& c : r.run.cores) sum += c.violation_sum;
  const auto n = r.run.total_violations();
  if (n > 0) {
    EXPECT_LT(sum / static_cast<double>(n), 0.06);  // mean magnitude < 6%
  }
}

TEST(EndToEnd, EnergyAccountingClosed) {
  // Total = sum of per-core counted energy + uncore; no component missing.
  const IntervalSimulator sim(db());
  workload::WorkloadMix mix;
  mix.name = "closure";
  mix.app_ids = {db().suite().index_of("gcc"), db().suite().index_of("lbm")};
  double observed_energy = 0.0;
  const RunResult r = sim.run(mix, cfg(rm::RmPolicy::Rm2),
                              [&](const IntervalObservation& obs) {
                                observed_energy += obs.energy_j;
                              });
  double counted = 0.0;
  for (const CoreResult& c : r.cores) counted += c.counted_energy_j;
  EXPECT_NEAR(observed_energy, counted, counted * 1e-9);
  EXPECT_NEAR(r.total_energy_j(), counted + r.uncore_energy_j, 1e-9);
}

TEST(EndToEnd, ModelQualityOrderingHoldsInClosedLoop) {
  // The naive Model1 can chase phantom savings (it hugely overestimates the
  // baseline memory time, inflating the QoS budget), but it must pay for
  // them with far more and far larger QoS violations than Model3 - the
  // actual claim behind Fig. 7/9.
  ExperimentRunner runner(db());
  const auto mix = first_mix_of(workload::Scenario::One, 2);
  const SavingsResult r1 =
      runner.run(mix, cfg(rm::RmPolicy::Rm3, rm::PerfModelKind::Model1));
  const SavingsResult r3 =
      runner.run(mix, cfg(rm::RmPolicy::Rm3, rm::PerfModelKind::Model3));
  auto max_violation = [](const SavingsResult& r) {
    double m = 0.0;
    for (const CoreResult& c : r.run.cores) m = std::max(m, c.violation_max);
    return m;
  };
  if (r1.savings > r3.savings + 0.01) {
    // Phantom savings must come with materially worse QoS behaviour.
    EXPECT_GT(max_violation(r1), max_violation(r3));
    EXPECT_GT(max_violation(r1), 0.05);
  } else {
    EXPECT_GT(r3.savings, r1.savings - 0.02);
  }
}

TEST(EndToEnd, PerfectModelIsUpperBoundIsh) {
  // The perfect model (ground-truth prediction incl. next phase) should do
  // at least as well as Model3 up to small dynamic effects.
  ExperimentRunner runner(db());
  const auto mix = first_mix_of(workload::Scenario::One, 2);
  rm::RmConfig perfect = cfg(rm::RmPolicy::Rm3, rm::PerfModelKind::Perfect);
  perfect.energy.perfect = true;
  const double sp = runner.run(mix, perfect).savings;
  const double s3 =
      runner.run(mix, cfg(rm::RmPolicy::Rm3, rm::PerfModelKind::Model3)).savings;
  EXPECT_GT(sp, s3 - 0.03);
}

TEST(EndToEnd, PerfectModelNeverViolatesMeaningfully) {
  ExperimentRunner runner(db());
  const auto mix = first_mix_of(workload::Scenario::One, 2);
  rm::RmConfig perfect = cfg(rm::RmPolicy::Rm3, rm::PerfModelKind::Perfect);
  perfect.energy.perfect = true;
  const SavingsResult r = runner.run(mix, perfect);
  // With exact predictions the only violations possible come from
  // enforcement overheads; the magnitude check must stay tiny.
  double max_violation = 0.0;
  for (const CoreResult& c : r.run.cores) {
    max_violation = std::max(max_violation, c.violation_max);
  }
  EXPECT_LT(max_violation, 0.01);
}

TEST(EndToEnd, FourCoreWorkloadRuns) {
  const workload::SimDb& db4 = qosrm::testing::shared_db(4);
  ExperimentRunner runner(db4);
  workload::WorkloadGenOptions opt;
  opt.cores = 4;
  opt.per_scenario = 1;
  const auto mixes = generate_workloads(workload::spec_suite(), opt);
  const SavingsResult r = runner.run(mixes[0], cfg(rm::RmPolicy::Rm3));
  EXPECT_EQ(r.run.cores.size(), 4u);
  EXPECT_GT(r.savings, -0.02);
}

}  // namespace
}  // namespace qosrm::rmsim
