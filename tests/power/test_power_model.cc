#include "power/power_model.hh"

#include <gtest/gtest.h>

#include "arch/core_model.hh"
#include "arch/dvfs.hh"

namespace qosrm::power {
namespace {

using arch::CoreSize;

TEST(PowerModel, DynamicEnergyQuadraticInVoltage) {
  PowerModel pm;
  const double e1 = pm.core_dynamic_energy(CoreSize::M, 1.0, 1e8, 0.0);
  const double e2 = pm.core_dynamic_energy(CoreSize::M, 1.25, 1e8, 0.0);
  EXPECT_NEAR(e2 / e1, 1.25 * 1.25, 1e-9);
}

TEST(PowerModel, DynamicEnergyLinearInInstructions) {
  PowerModel pm;
  const double e1 = pm.core_dynamic_energy(CoreSize::M, 1.0, 1e8, 0.0);
  const double e2 = pm.core_dynamic_energy(CoreSize::M, 1.0, 3e8, 0.0);
  EXPECT_NEAR(e2 / e1, 3.0, 1e-9);
}

TEST(PowerModel, DynamicEnergyScalesWithCoreSize) {
  PowerModel pm;
  const double es = pm.core_dynamic_energy(CoreSize::S, 1.0, 1e8, 0.0);
  const double em = pm.core_dynamic_energy(CoreSize::M, 1.0, 1e8, 0.0);
  const double el = pm.core_dynamic_energy(CoreSize::L, 1.0, 1e8, 0.0);
  EXPECT_LT(es, em);
  EXPECT_LT(em, el);
  EXPECT_NEAR(el / em, arch::core_params(CoreSize::L).epi_scale, 1e-9);
}

TEST(PowerModel, StalledCyclesCostClockEnergy) {
  PowerModel pm;
  const double base = pm.core_dynamic_energy(CoreSize::M, 1.0, 1e8, 0.0);
  const double with_stalls = pm.core_dynamic_energy(CoreSize::M, 1.0, 1e8, 5e7);
  EXPECT_GT(with_stalls, base);
  EXPECT_NEAR(with_stalls - base, pm.params().stall_epc_joule * 5e7, 1e-12);
}

TEST(PowerModel, StaticPowerLinearInVoltageAndArea) {
  PowerModel pm;
  EXPECT_NEAR(pm.core_static_power(CoreSize::M, 1.0), pm.params().leak_watt, 1e-12);
  EXPECT_NEAR(pm.core_static_power(CoreSize::M, 0.8) /
                  pm.core_static_power(CoreSize::M, 1.0),
              0.8, 1e-9);
  EXPECT_GT(pm.core_static_power(CoreSize::L, 1.0),
            pm.core_static_power(CoreSize::S, 1.0));
}

TEST(PowerModel, MemoryEnergyPerAccess) {
  PowerModel pm;
  EXPECT_NEAR(pm.memory_energy(1e6), pm.params().mem_energy_joule * 1e6, 1e-12);
}

TEST(PowerModel, UncorePowerGrowsWithCores) {
  PowerModel pm;
  EXPECT_GT(pm.uncore_power(8), pm.uncore_power(2));
  EXPECT_NEAR(pm.uncore_power(4) - pm.uncore_power(2),
              2.0 * pm.params().uncore_per_core_watt, 1e-12);
}

TEST(PowerModel, IntervalEnergyDecomposition) {
  PowerModel pm;
  const arch::IntervalCharacteristics chars{100e6, 4.0, 0.05, 0.1};
  const arch::MemoryBehaviour mem{5e5, 1e5, 100e-9};
  const arch::OperatingPoint vf = arch::VfTable::baseline();
  const auto timing = arch::evaluate_interval(chars, mem, CoreSize::M, vf.freq_hz);
  const IntervalEnergy e = pm.interval_energy(CoreSize::M, vf, timing, 100e6, 5e5);

  EXPECT_GT(e.core_dynamic_j, 0.0);
  EXPECT_GT(e.core_static_j, 0.0);
  EXPECT_NEAR(e.memory_j, 5e5 * pm.params().mem_energy_joule, 1e-12);
  EXPECT_NEAR(e.total_j(), e.core_dynamic_j + e.core_static_j + e.memory_j, 1e-15);
  EXPECT_NEAR(e.core_static_j,
              pm.core_static_power(CoreSize::M, vf.voltage) * timing.total_seconds,
              1e-12);
}

TEST(PowerModel, CalibrationMagnitudesAreSane) {
  // An M core at 2 GHz / 1 V running IPC ~2 should draw watt-scale dynamic
  // power - the regime where the paper's DVFS-vs-size trades are meaningful.
  PowerModel pm;
  const double dyn_j = pm.core_dynamic_energy(CoreSize::M, 1.0, 100e6, 0.0);
  const double seconds = 100e6 / 2.0 / 2e9;
  const double watts = dyn_j / seconds;
  EXPECT_GT(watts, 1.0);
  EXPECT_LT(watts, 20.0);
}

TEST(PowerModel, DvfsEnergyTradeIsQuadraticNotLinear) {
  // Same work at a higher VF point costs ~V^2 more dynamic energy - the
  // "quadratic energy cost" the paper attributes to DVFS compensation.
  PowerModel pm;
  const double lo = pm.core_dynamic_energy(CoreSize::M, 0.8, 1e8, 0.0);
  const double hi = pm.core_dynamic_energy(CoreSize::M, 1.25, 1e8, 0.0);
  EXPECT_NEAR(hi / lo, (1.25 / 0.8) * (1.25 / 0.8), 1e-9);
}

}  // namespace
}  // namespace qosrm::power
