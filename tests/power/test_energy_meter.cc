#include "power/energy_meter.hh"

#include <gtest/gtest.h>

namespace qosrm::power {
namespace {

using arch::CoreSize;

TEST(EnergyMeter, InvalidBeforeFirstSample) {
  PowerModel pm;
  EnergyMeter meter(pm);
  EXPECT_FALSE(meter.sample().valid);
}

TEST(EnergyMeter, SeparatesDynamicFromStatic) {
  PowerModel pm;
  EnergyMeter meter(pm);
  const arch::OperatingPoint vf = arch::VfTable::baseline();
  const double duration = 0.05;
  const double static_j = pm.core_static_power(CoreSize::M, vf.voltage) * duration;
  const double dynamic_j = 0.080;
  meter.record_interval(CoreSize::M, vf, static_j + dynamic_j, duration);

  const PowerSample& s = meter.sample();
  EXPECT_TRUE(s.valid);
  EXPECT_EQ(s.size, CoreSize::M);
  EXPECT_DOUBLE_EQ(s.voltage, vf.voltage);
  EXPECT_DOUBLE_EQ(s.freq_hz, vf.freq_hz);
  EXPECT_NEAR(s.dynamic_energy_j, dynamic_j, 1e-12);
  EXPECT_NEAR(s.dynamic_power_w, dynamic_j / duration, 1e-9);
  EXPECT_DOUBLE_EQ(s.duration_s, duration);
}

TEST(EnergyMeter, ClampsNegativeDynamicToZero) {
  // Measured energy below the static estimate (measurement noise) must not
  // produce a negative dynamic sample.
  PowerModel pm;
  EnergyMeter meter(pm);
  const arch::OperatingPoint vf = arch::VfTable::baseline();
  meter.record_interval(CoreSize::M, vf, 1e-6, 0.05);
  EXPECT_DOUBLE_EQ(meter.sample().dynamic_energy_j, 0.0);
}

TEST(EnergyMeter, LatestSampleWins) {
  PowerModel pm;
  EnergyMeter meter(pm);
  const arch::OperatingPoint vf = arch::VfTable::baseline();
  meter.record_interval(CoreSize::M, vf, 0.2, 0.05);
  meter.record_interval(CoreSize::L, vf, 0.3, 0.05);
  EXPECT_EQ(meter.sample().size, CoreSize::L);
}

TEST(EnergyMeter, StaticPowerTableMatchesOfflineModel) {
  PowerModel pm;
  EnergyMeter meter(pm);
  for (const CoreSize c : arch::kAllCoreSizes) {
    EXPECT_DOUBLE_EQ(meter.static_power(c, 1.1),
                     pm.core_static_power(c, 1.1));
  }
}

}  // namespace
}  // namespace qosrm::power
