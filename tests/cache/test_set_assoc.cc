#include "cache/set_assoc_cache.hh"

#include <gtest/gtest.h>

namespace qosrm::cache {
namespace {

TEST(SetAssoc, GeometryDerivesSets) {
  CacheGeometry g{32 * 1024, 4, 64};
  EXPECT_EQ(g.sets(), 128);
}

TEST(SetAssoc, ColdMissThenHit) {
  SetAssocCache cache({1024, 2, 64});
  EXPECT_FALSE(cache.access(0x1000));
  EXPECT_TRUE(cache.access(0x1000));
  EXPECT_EQ(cache.misses(), 1u);
  EXPECT_EQ(cache.hits(), 1u);
}

TEST(SetAssoc, SameBlockDifferentBytesHit) {
  SetAssocCache cache({1024, 2, 64});
  cache.access(0x1000);
  EXPECT_TRUE(cache.access(0x103F));  // same 64B block
  EXPECT_FALSE(cache.access(0x1040)); // next block
}

TEST(SetAssoc, ConflictEviction) {
  // 1 KB, 2-way, 64 B blocks -> 8 sets; addresses 8 blocks apart collide.
  SetAssocCache cache({1024, 2, 64});
  const std::uint64_t stride = 8 * 64;
  cache.access(0x0);
  cache.access(stride);
  cache.access(2 * stride);  // evicts 0x0
  EXPECT_FALSE(cache.access(0x0));
}

TEST(SetAssoc, LruVictimSelection) {
  SetAssocCache cache({1024, 2, 64});
  const std::uint64_t stride = 8 * 64;
  cache.access(0x0);
  cache.access(stride);
  cache.access(0x0);          // 0x0 is now MRU
  cache.access(2 * stride);   // evicts `stride`, not 0x0
  EXPECT_TRUE(cache.access(0x0));
  EXPECT_FALSE(cache.access(stride));
}

TEST(SetAssoc, MissRate) {
  SetAssocCache cache({1024, 2, 64});
  cache.access(0x0);  // miss
  cache.access(0x0);  // hit
  cache.access(0x0);  // hit
  cache.access(0x40); // miss
  EXPECT_DOUBLE_EQ(cache.miss_rate(), 0.5);
}

TEST(SetAssoc, ResetClearsContentsAndCounters) {
  SetAssocCache cache({1024, 2, 64});
  cache.access(0x0);
  cache.reset();
  EXPECT_EQ(cache.hits() + cache.misses(), 0u);
  EXPECT_FALSE(cache.access(0x0));
}

TEST(SetAssoc, TableIL1Geometry) {
  // Table I: L1 32 KB 4-way, L2 256 KB 8-way, both 64 B blocks.
  SetAssocCache l1({32 * 1024, 4, 64});
  SetAssocCache l2({256 * 1024, 8, 64});
  EXPECT_EQ(l1.geometry().sets(), 128);
  EXPECT_EQ(l2.geometry().sets(), 512);
}

}  // namespace
}  // namespace qosrm::cache
