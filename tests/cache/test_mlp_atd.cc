#include "cache/mlp_atd.hh"

#include <gtest/gtest.h>

#include <vector>

namespace qosrm::cache {
namespace {

MlpAtdConfig tiny_config() {
  MlpAtdConfig cfg;
  cfg.sets = 1;
  cfg.max_ways = 16;
  cfg.min_ways = 1;
  cfg.index_bits = 10;
  return cfg;
}

/// Feeds accesses that ALL miss (unique tags) with the given instruction
/// indices, in the given arrival order.
void feed_misses(MlpAtd& atd, const std::vector<std::uint64_t>& inst_indices) {
  std::uint64_t tag = 1000;
  for (const std::uint64_t idx : inst_indices) {
    atd.observe({idx, 0, tag++, false});
  }
}

// ---------------------------------------------------------------------------
// Paper Fig. 4, literally: loads LD1(inst 5), LD2(inst 20), LD3(inst 33),
// LD4(inst 90); ATD arrival order LD1, LD3, LD2, LD4 (LD2 delayed by a data
// dependency on LD1). All predicted to miss.
//
//   Core S (ROB 64): LD1 LM; LD3 dist 28 < 64 -> OV; LD2 dist 15 < 28 ->
//   out-of-order -> dependency -> LM; LD4 dist 70 > 64 -> LM.   => 3 LMs
//   Core M (ROB 128): same until LD4: dist 70 < 128 -> OV.      => 2 LMs
// ---------------------------------------------------------------------------
TEST(MlpAtd, PaperFigure4WalkthroughCoreS) {
  MlpAtd atd(tiny_config());
  feed_misses(atd, {5, 33, 20, 90});
  EXPECT_DOUBLE_EQ(atd.leading_misses(arch::CoreSize::S, 16), 3.0);
}

TEST(MlpAtd, PaperFigure4WalkthroughCoreM) {
  MlpAtd atd(tiny_config());
  feed_misses(atd, {5, 33, 20, 90});
  EXPECT_DOUBLE_EQ(atd.leading_misses(arch::CoreSize::M, 16), 2.0);
}

TEST(MlpAtd, PaperFigure4WalkthroughCoreL) {
  MlpAtd atd(tiny_config());
  feed_misses(atd, {5, 33, 20, 90});
  // ROB 256: LD4 also overlaps; only LD1 and the dependent LD2 lead.
  EXPECT_DOUBLE_EQ(atd.leading_misses(arch::CoreSize::L, 16), 2.0);
}

TEST(MlpAtd, FirstMissIsAlwaysLeading) {
  MlpAtd atd(tiny_config());
  feed_misses(atd, {100});
  for (const arch::CoreSize c : arch::kAllCoreSizes) {
    EXPECT_DOUBLE_EQ(atd.leading_misses(c, 16), 1.0);
  }
}

TEST(MlpAtd, InOrderBurstWithinRobOverlaps) {
  MlpAtd atd(tiny_config());
  feed_misses(atd, {10, 20, 30, 40});  // distances 10,20,30 all < 64
  EXPECT_DOUBLE_EQ(atd.leading_misses(arch::CoreSize::S, 16), 1.0);
}

TEST(MlpAtd, BeyondRobStartsNewGroup) {
  MlpAtd atd(tiny_config());
  feed_misses(atd, {10, 100, 400});  // 90 > 64 and 300 > 256
  EXPECT_DOUBLE_EQ(atd.leading_misses(arch::CoreSize::S, 16), 3.0);
  EXPECT_DOUBLE_EQ(atd.leading_misses(arch::CoreSize::M, 16), 2.0);  // 90 < 128
  EXPECT_DOUBLE_EQ(atd.leading_misses(arch::CoreSize::L, 16), 2.0);  // 300 > 256
}

TEST(MlpAtd, OutOfOrderArrivalFlaggedAsDependencyPerCounter) {
  MlpAtd atd(tiny_config());
  // Arrival: 10, then 50 (OV dist 40), then 30 (dist 20 < 40 -> LM).
  feed_misses(atd, {10, 50, 30});
  EXPECT_DOUBLE_EQ(atd.leading_misses(arch::CoreSize::S, 16), 2.0);
}

TEST(MlpAtd, HitsDoNotTouchCounters) {
  MlpAtd atd(tiny_config());
  atd.observe({10, 0, 7, false});   // cold miss -> LM at every w
  atd.observe({20, 0, 7, false});   // hits at recency 0 -> misses nowhere
  for (int w = 1; w <= 16; ++w) {
    EXPECT_DOUBLE_EQ(atd.leading_misses(arch::CoreSize::L, w), 1.0) << w;
  }
}

TEST(MlpAtd, PerAllocationMissPredicateDiffers) {
  MlpAtd atd(tiny_config());
  // Build up a set with tags A,B; touching A at recency position 1 counts as
  // a miss for w=1 but a hit for w>=2.
  atd.observe({10, 0, 1, false});   // A cold
  atd.observe({200, 0, 2, false});  // B cold (new LM group at S, dist 190)
  atd.observe({420, 0, 1, false});  // A at recency 1: miss only for w=1
  EXPECT_DOUBLE_EQ(atd.leading_misses(arch::CoreSize::S, 1), 3.0);
  EXPECT_DOUBLE_EQ(atd.leading_misses(arch::CoreSize::S, 2), 2.0);
}

TEST(MlpAtd, IndexQuantizationAliasesLongDistances) {
  // Window = 2^10 = 1024. A distance of 1024+32 aliases to 32 < ROB, so the
  // hardware wrongly counts OV - the documented pessimism of 10-bit indices.
  MlpAtd atd(tiny_config());
  feed_misses(atd, {0, 1056});
  EXPECT_DOUBLE_EQ(atd.leading_misses(arch::CoreSize::S, 16), 1.0);

  // With more index bits the same pattern is classified correctly.
  MlpAtdConfig wide = tiny_config();
  wide.index_bits = 16;
  MlpAtd atd_wide(wide);
  feed_misses(atd_wide, {0, 1056});
  EXPECT_DOUBLE_EQ(atd_wide.leading_misses(arch::CoreSize::S, 16), 2.0);
}

TEST(MlpAtd, TotalMissesMatchUmonView) {
  MlpAtd atd(tiny_config());
  feed_misses(atd, {10, 500, 2000});  // three cold misses
  for (int w = 1; w <= 16; ++w) {
    EXPECT_DOUBLE_EQ(atd.total_misses(w), 3.0);
  }
}

TEST(MlpAtd, MlpIsMissesOverLeading) {
  MlpAtd atd(tiny_config());
  feed_misses(atd, {10, 20, 30, 40});
  EXPECT_DOUBLE_EQ(atd.mlp(arch::CoreSize::S, 16), 4.0);
  EXPECT_DOUBLE_EQ(atd.mlp(arch::CoreSize::M, 16), 4.0);
}

TEST(MlpAtd, ResetClearsCountersKeepsTags) {
  MlpAtd atd(tiny_config());
  atd.observe({10, 0, 7, false});
  atd.reset_counters();
  EXPECT_DOUBLE_EQ(atd.leading_misses(arch::CoreSize::S, 16), 0.0);
  // Tag 7 is still resident: re-touching it is a hit, not a new LM.
  atd.observe({20, 0, 7, false});
  EXPECT_DOUBLE_EQ(atd.leading_misses(arch::CoreSize::S, 16), 0.0);
}

TEST(MlpAtd, SetSamplingScalesEstimates) {
  MlpAtdConfig cfg = tiny_config();
  cfg.sets = 4;
  cfg.sample_period = 2;  // observe sets 0 and 2
  MlpAtd atd(cfg);
  atd.observe({10, 0, 1, false});   // sampled
  atd.observe({20, 1, 2, false});   // not sampled
  atd.observe({600, 2, 3, false});  // sampled
  EXPECT_DOUBLE_EQ(atd.total_misses(16), 2.0 * 2.0);
  EXPECT_DOUBLE_EQ(atd.leading_misses(arch::CoreSize::S, 16), 2.0 * 2.0);
}

TEST(MlpAtd, StorageBudgetBelowPaperEstimate) {
  // Paper Section III-E: < 300 bytes per core for the 48-counter extension.
  MlpAtdConfig cfg;
  cfg.min_ways = 1;
  cfg.max_ways = 16;
  MlpAtd atd(cfg);
  EXPECT_LE(atd.extension_storage_bits(), 300u * 8u);
}

TEST(MlpAtd, CounterSaturatesAtConfiguredWidth) {
  MlpAtdConfig cfg = tiny_config();
  cfg.counter_bits = 8;  // max 255
  MlpAtd atd(cfg);
  std::uint64_t inst = 0;
  for (int i = 0; i < 300; ++i) {
    inst += 2000;  // always beyond every ROB -> every miss is leading
    atd.observe({inst, 0, 10000 + static_cast<std::uint64_t>(i), false});
  }
  EXPECT_DOUBLE_EQ(atd.leading_misses(arch::CoreSize::L, 16), 255.0);
}

}  // namespace
}  // namespace qosrm::cache
