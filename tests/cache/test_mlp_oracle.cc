#include "cache/mlp_oracle.hh"

#include <gtest/gtest.h>

#include "cache/recency.hh"
#include "common/rng.hh"

namespace qosrm::cache {
namespace {

/// Builds a trace of all-cold (always missing) loads with given indices and
/// dependency flags.
std::vector<LlcAccess> cold_trace(
    const std::vector<std::pair<std::uint64_t, bool>>& loads) {
  std::vector<LlcAccess> trace;
  std::uint64_t tag = 1;
  for (const auto& [idx, dep] : loads) {
    trace.push_back({idx, 0, tag++, dep});
  }
  return trace;
}

std::vector<std::uint8_t> all_miss(std::size_t n) {
  return std::vector<std::uint8_t>(n, kRecencyMiss);
}

TEST(MlpOracle, SingleMissIsLeading) {
  const auto trace = cold_trace({{10, false}});
  EXPECT_DOUBLE_EQ(
      MlpOracle::leading_misses(trace, all_miss(1), arch::CoreSize::S, 8), 1.0);
}

TEST(MlpOracle, IndependentBurstWithinRobOverlaps) {
  const auto trace = cold_trace({{10, false}, {30, false}, {50, false}});
  EXPECT_DOUBLE_EQ(
      MlpOracle::leading_misses(trace, all_miss(3), arch::CoreSize::S, 8), 1.0);
}

TEST(MlpOracle, RobWindowBoundsOverlap) {
  // Distances from the leading miss: 60 (inside the S ROB of 64) and 120
  // (outside the S ROB, inside the M ROB of 128).
  const auto trace = cold_trace({{0, false}, {60, false}, {120, false}});
  EXPECT_DOUBLE_EQ(
      MlpOracle::leading_misses(trace, all_miss(3), arch::CoreSize::S, 8), 2.0);
  EXPECT_DOUBLE_EQ(
      MlpOracle::leading_misses(trace, all_miss(3), arch::CoreSize::M, 8), 1.0);
}

TEST(MlpOracle, DependentLoadBehindMissSerializes) {
  // Second load depends on the first, which missed: it cannot overlap even
  // though it is within the ROB window.
  const auto trace = cold_trace({{10, false}, {20, true}});
  EXPECT_DOUBLE_EQ(
      MlpOracle::leading_misses(trace, all_miss(2), arch::CoreSize::L, 8), 2.0);
}

TEST(MlpOracle, DependentLoadBehindHitOverlaps) {
  // The producer hits, so the dependent load's address is available quickly
  // and it can overlap the current leading miss.
  std::vector<LlcAccess> trace = {
      {10, 0, 1, false},  // cold miss (LM)
      {20, 0, 2, false},  // cold miss, overlaps
      {30, 0, 2, true},   // depends on previous load... which HIT? no:
  };
  // Craft recency manually: loads 0,1 miss; load 2's producer (load 1)
  // missed, so dep -> serialize. Now make producer hit instead:
  std::vector<std::uint8_t> recency = {kRecencyMiss, 0, kRecencyMiss};
  // load 1 hits (recency 0 < w), load 2 misses and depends on a HIT -> it
  // overlaps load 0's group: a single leading miss.
  EXPECT_DOUBLE_EQ(
      MlpOracle::leading_misses(trace, recency, arch::CoreSize::L, 8), 1.0);
}

TEST(MlpOracle, ChainOfDependentMissesFullySerializes) {
  const auto trace = cold_trace(
      {{10, false}, {20, true}, {30, true}, {40, true}, {50, true}});
  for (const arch::CoreSize c : arch::kAllCoreSizes) {
    EXPECT_DOUBLE_EQ(MlpOracle::leading_misses(trace, all_miss(5), c, 8), 5.0);
  }
}

TEST(MlpOracle, LsqLimitsGroupSize) {
  // 12 independent misses within the S ROB window; the S LSQ holds 10, so
  // accesses beyond the limit start a new group.
  std::vector<std::pair<std::uint64_t, bool>> loads;
  for (int i = 0; i < 12; ++i) loads.emplace_back(2 + i * 5, false);
  const auto trace = cold_trace(loads);
  EXPECT_DOUBLE_EQ(
      MlpOracle::leading_misses(trace, all_miss(12), arch::CoreSize::S, 8), 2.0);
  // The M LSQ (32) swallows the whole burst.
  EXPECT_DOUBLE_EQ(
      MlpOracle::leading_misses(trace, all_miss(12), arch::CoreSize::M, 8), 1.0);
}

TEST(MlpOracle, HitsNeitherLeadNorBlock) {
  std::vector<LlcAccess> trace = {
      {10, 0, 1, false}, {20, 0, 2, false}, {30, 0, 3, false}};
  std::vector<std::uint8_t> recency = {kRecencyMiss, 0, kRecencyMiss};
  // Load 1 hits; loads 0 and 2 miss and overlap (dist 20 < ROB).
  EXPECT_DOUBLE_EQ(
      MlpOracle::leading_misses(trace, recency, arch::CoreSize::M, 8), 1.0);
}

TEST(MlpOracle, AllocationChangesWhoMisses) {
  std::vector<LlcAccess> trace = {
      {10, 0, 1, false}, {500, 0, 2, false}, {1000, 0, 1, false}};
  std::vector<std::uint8_t> recency = {kRecencyMiss, kRecencyMiss, 1};
  // w=2: third access hits -> 2 leading misses. w=1: it misses -> 3 (all
  // distances exceed every ROB).
  EXPECT_DOUBLE_EQ(
      MlpOracle::leading_misses(trace, recency, arch::CoreSize::L, 2), 2.0);
  EXPECT_DOUBLE_EQ(
      MlpOracle::leading_misses(trace, recency, arch::CoreSize::L, 1), 3.0);
}

TEST(MlpOracle, LeadingMissCurveMatchesPointQueries) {
  Rng rng(11);
  std::vector<LlcAccess> trace;
  std::uint64_t inst = 0, tag = 0;
  for (int i = 0; i < 2000; ++i) {
    inst += 1 + rng.uniform_u64(60);
    trace.push_back({inst, static_cast<std::uint32_t>(rng.uniform_u64(4)),
                     tag = (rng.bernoulli(0.5) ? tag : tag + 1),
                     rng.bernoulli(0.3)});
  }
  RecencyProfiler prof(4, 16);
  const auto recency = prof.annotate(trace);
  const auto curve =
      MlpOracle::leading_miss_curve(trace, recency, arch::CoreSize::M, 1, 16);
  ASSERT_EQ(curve.size(), 16u);
  for (int w = 1; w <= 16; ++w) {
    EXPECT_DOUBLE_EQ(curve[static_cast<std::size_t>(w - 1)],
                     MlpOracle::leading_misses(trace, recency,
                                               arch::CoreSize::M, w));
  }
}

// Property sweep: on random traces, leading misses are (a) bounded by total
// misses, (b) at least total/LSQ, and (c) non-increasing in core size.
class MlpOracleProperty : public ::testing::TestWithParam<std::uint64_t> {};

TEST_P(MlpOracleProperty, Invariants) {
  Rng rng(GetParam());
  std::vector<LlcAccess> trace;
  std::uint64_t inst = 0;
  std::uint64_t tag = 0;
  for (int i = 0; i < 5000; ++i) {
    inst += 1 + rng.geometric(1.0 / 40.0);
    trace.push_back({inst, static_cast<std::uint32_t>(rng.uniform_u64(8)),
                     tag += rng.uniform_u64(3), rng.bernoulli(0.25)});
  }
  RecencyProfiler prof(8, 16);
  const auto recency = prof.annotate(trace);

  for (const int w : {2, 4, 8, 16}) {
    double misses = 0.0;
    for (const std::uint8_t r : recency) misses += misses_at(r, w) ? 1.0 : 0.0;

    double prev = 1e300;
    for (const arch::CoreSize c : arch::kAllCoreSizes) {
      const double lm = MlpOracle::leading_misses(trace, recency, c, w);
      EXPECT_LE(lm, misses);
      if (misses > 0) {
        EXPECT_GE(lm, 1.0);
      }
      // Larger cores overlap at least as much (same dependency structure).
      EXPECT_LE(lm, prev + 1e-9);
      prev = lm;
    }
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, MlpOracleProperty,
                         ::testing::Values(1, 7, 42, 1234, 99999));

}  // namespace
}  // namespace qosrm::cache
