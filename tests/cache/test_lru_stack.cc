#include "cache/lru_stack.hh"

#include <gtest/gtest.h>

#include "common/rng.hh"

namespace qosrm::cache {
namespace {

TEST(LruStack, ColdAccessMisses) {
  LruStack s(4);
  EXPECT_EQ(s.access(1), kRecencyMiss);
  EXPECT_EQ(s.occupancy(), 1);
}

TEST(LruStack, RepeatAccessHitsMru) {
  LruStack s(4);
  s.access(1);
  EXPECT_EQ(s.access(1), 0);
}

TEST(LruStack, RecencyPositionsReflectAccessOrder) {
  LruStack s(4);
  s.access(1);
  s.access(2);
  s.access(3);
  // Stack is now [3, 2, 1]; touching 1 hits at position 2.
  EXPECT_EQ(s.access(1), 2);
  // Stack is now [1, 3, 2].
  EXPECT_EQ(s.tag_at(0), 1u);
  EXPECT_EQ(s.tag_at(1), 3u);
  EXPECT_EQ(s.tag_at(2), 2u);
}

TEST(LruStack, EvictsLeastRecentlyUsed) {
  LruStack s(2);
  s.access(1);
  s.access(2);
  s.access(3);  // evicts 1
  EXPECT_FALSE(s.contains(1));
  EXPECT_TRUE(s.contains(2));
  EXPECT_TRUE(s.contains(3));
  EXPECT_EQ(s.access(1), kRecencyMiss);
}

TEST(LruStack, PositionOfDoesNotMutate) {
  LruStack s(4);
  s.access(1);
  s.access(2);
  EXPECT_EQ(s.position_of(1), 1);
  EXPECT_EQ(s.position_of(1), 1);  // unchanged
  EXPECT_EQ(s.position_of(99), kRecencyMiss);
}

TEST(LruStack, OccupancyCapsAtWays) {
  LruStack s(3);
  for (std::uint64_t t = 0; t < 10; ++t) s.access(t);
  EXPECT_EQ(s.occupancy(), 3);
}

TEST(LruStack, ClearEmptiesStack) {
  LruStack s(3);
  s.access(1);
  s.clear();
  EXPECT_EQ(s.occupancy(), 0);
  EXPECT_FALSE(s.contains(1));
}

// The stack-inclusion property is what makes ATD-based miss curves valid:
// a hit at position r in a large stack is a hit in every stack with > r ways.
TEST(LruStack, StackInclusionProperty) {
  Rng rng(123);
  LruStack big(8);
  LruStack small(3);
  for (int i = 0; i < 5000; ++i) {
    const std::uint64_t tag = rng.uniform_u64(12);
    const std::uint8_t pos_big = big.access(tag);
    const std::uint8_t pos_small = small.access(tag);
    const bool hit_small = pos_small != kRecencyMiss;
    const bool big_says_hit_small =
        pos_big != kRecencyMiss && static_cast<int>(pos_big) < 3;
    EXPECT_EQ(hit_small, big_says_hit_small) << "at access " << i;
  }
}

TEST(LruStack, SameStreamSamePositionsAcrossCapacities) {
  // Positions < min(ways) agree between differently sized stacks.
  Rng rng(7);
  LruStack a(16), b(6);
  for (int i = 0; i < 3000; ++i) {
    const std::uint64_t tag = rng.uniform_u64(10);
    const std::uint8_t pa = a.access(tag);
    const std::uint8_t pb = b.access(tag);
    if (pb != kRecencyMiss) {
      EXPECT_EQ(pa, pb);
    } else if (pa != kRecencyMiss) {
      EXPECT_GE(static_cast<int>(pa), 6);
    }
  }
}

}  // namespace
}  // namespace qosrm::cache
