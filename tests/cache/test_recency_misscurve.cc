#include <gtest/gtest.h>

#include "cache/miss_curve.hh"
#include "cache/recency.hh"
#include "common/rng.hh"

namespace qosrm::cache {
namespace {

std::vector<LlcAccess> random_trace(int n, int sets, int tags, std::uint64_t seed) {
  Rng rng(seed);
  std::vector<LlcAccess> trace;
  trace.reserve(static_cast<std::size_t>(n));
  std::uint64_t inst = 0;
  for (int i = 0; i < n; ++i) {
    inst += 1 + rng.uniform_u64(100);
    trace.push_back({inst,
                     static_cast<std::uint32_t>(rng.uniform_u64(sets)),
                     rng.uniform_u64(static_cast<std::uint64_t>(tags)), false});
  }
  return trace;
}

TEST(Recency, AnnotationMatchesManualLru) {
  RecencyProfiler prof(1, 4);
  std::vector<LlcAccess> trace = {
      {1, 0, 10, false}, {2, 0, 11, false}, {3, 0, 10, false}, {4, 0, 12, false},
      {5, 0, 11, false},
  };
  const auto recency = prof.annotate(trace);
  EXPECT_EQ(recency[0], kRecencyMiss);  // 10 cold
  EXPECT_EQ(recency[1], kRecencyMiss);  // 11 cold
  EXPECT_EQ(recency[2], 1);             // 10 at position 1
  EXPECT_EQ(recency[3], kRecencyMiss);  // 12 cold
  EXPECT_EQ(recency[4], 2);             // 11 behind 12, 10
}

TEST(Recency, CustomOrderAppliesPermutation) {
  RecencyProfiler prof(1, 4);
  std::vector<LlcAccess> trace = {{1, 0, 10, false}, {2, 0, 10, false}};
  const std::vector<std::uint32_t> order = {1, 0};
  const auto recency = prof.annotate(trace, order);
  // Position 1 processed first (cold), then position 0 hits.
  EXPECT_EQ(recency[1], kRecencyMiss);
  EXPECT_EQ(recency[0], 0);
}

TEST(Recency, ResetForgetsState) {
  RecencyProfiler prof(1, 4);
  LlcAccess a{1, 0, 5, false};
  EXPECT_EQ(prof.observe(a), kRecencyMiss);
  EXPECT_EQ(prof.observe(a), 0);
  prof.reset();
  EXPECT_EQ(prof.observe(a), kRecencyMiss);
}

TEST(Recency, MissesAtHelper) {
  EXPECT_TRUE(misses_at(kRecencyMiss, 16));
  EXPECT_TRUE(misses_at(8, 8));
  EXPECT_FALSE(misses_at(7, 8));
  EXPECT_FALSE(misses_at(0, 1));
}

TEST(MissCurve, FromRecencyCountsSuffix) {
  // recency values: two at position 0, one at 2, one cold.
  const std::vector<std::uint8_t> recency = {0, 0, 2, kRecencyMiss};
  const MissCurve curve = MissCurve::from_recency(recency, 4);
  EXPECT_DOUBLE_EQ(curve.misses(4), 1.0);   // cold only
  EXPECT_DOUBLE_EQ(curve.misses(3), 1.0);   // hit at 2 still hits
  EXPECT_DOUBLE_EQ(curve.misses(2), 2.0);   // position-2 hit now misses
  EXPECT_DOUBLE_EQ(curve.misses(1), 2.0);
}

TEST(MissCurve, MonotoneNonIncreasingOnRandomTraces) {
  for (const std::uint64_t seed : {1u, 2u, 3u, 4u}) {
    const auto trace = random_trace(20000, 16, 200, seed);
    RecencyProfiler prof(16, 16);
    const auto recency = prof.annotate(trace);
    const MissCurve curve = MissCurve::from_recency(recency, 16);
    for (int w = 2; w <= 16; ++w) {
      EXPECT_LE(curve.misses(w), curve.misses(w - 1)) << "seed " << seed;
    }
  }
}

TEST(MissCurve, ScaleAppliesSampling) {
  const std::vector<double> hits = {10.0, 5.0};
  const MissCurve curve = MissCurve::from_hit_counters(hits, 3.0, 32.0);
  EXPECT_DOUBLE_EQ(curve.misses(2), 3.0 * 32.0);
  EXPECT_DOUBLE_EQ(curve.misses(1), (3.0 + 5.0) * 32.0);
}

TEST(MissCurve, ClampsOutOfRangeWays) {
  const std::vector<double> hits = {1.0, 2.0};
  const MissCurve curve = MissCurve::from_hit_counters(hits, 1.0);
  EXPECT_DOUBLE_EQ(curve.misses(0), curve.misses(1));
  EXPECT_DOUBLE_EQ(curve.misses(99), curve.misses(2));
}

TEST(MissCurve, MakeMonotoneFixesNoise) {
  MissCurve curve(std::vector<double>{5.0, 6.0, 3.0});  // bump at w=2
  curve.make_monotone();
  EXPECT_GE(curve.misses(1), curve.misses(2));
  EXPECT_GE(curve.misses(2), curve.misses(3));
}

TEST(MissCurve, TotalMissesEqualTraceStatistics) {
  const auto trace = random_trace(5000, 8, 64, 99);
  RecencyProfiler prof(8, 16);
  const auto recency = prof.annotate(trace);
  const MissCurve curve = MissCurve::from_recency(recency, 16);
  // At w=1 every non-MRU access misses; count them directly.
  double expected = 0.0;
  for (const std::uint8_t r : recency) expected += misses_at(r, 1) ? 1.0 : 0.0;
  EXPECT_DOUBLE_EQ(curve.misses(1), expected);
}

}  // namespace
}  // namespace qosrm::cache
