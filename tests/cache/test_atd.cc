#include "cache/atd.hh"

#include <gtest/gtest.h>

#include "cache/recency.hh"
#include "common/rng.hh"

namespace qosrm::cache {
namespace {

std::vector<LlcAccess> random_trace(int n, int sets, int tags, std::uint64_t seed) {
  Rng rng(seed);
  std::vector<LlcAccess> trace;
  std::uint64_t inst = 0;
  for (int i = 0; i < n; ++i) {
    inst += 1 + rng.uniform_u64(50);
    trace.push_back({inst, static_cast<std::uint32_t>(rng.uniform_u64(sets)),
                     rng.uniform_u64(static_cast<std::uint64_t>(tags)), false});
  }
  return trace;
}

TEST(Atd, UnsampledMatchesExactProfiler) {
  const auto trace = random_trace(20000, 32, 400, 5);
  AtdConfig cfg;
  cfg.sets = 32;
  cfg.sample_period = 1;
  Atd atd(cfg);
  for (const auto& a : trace) atd.observe(a);

  RecencyProfiler prof(32, 16);
  const auto recency = prof.annotate(trace);
  const MissCurve exact = MissCurve::from_recency(recency, 16);
  const MissCurve estimated = atd.miss_curve();
  for (int w = 1; w <= 16; ++w) {
    EXPECT_DOUBLE_EQ(estimated.misses(w), exact.misses(w)) << "w=" << w;
  }
}

TEST(Atd, SampledEstimateTracksExactCurve) {
  const auto trace = random_trace(60000, 64, 1500, 9);
  AtdConfig cfg;
  cfg.sets = 64;
  cfg.sample_period = 8;
  Atd atd(cfg);
  for (const auto& a : trace) atd.observe(a);

  RecencyProfiler prof(64, 16);
  const auto recency = prof.annotate(trace);
  const MissCurve exact = MissCurve::from_recency(recency, 16);
  for (const int w : {2, 4, 8, 12, 16}) {
    const double est = atd.estimated_misses(w);
    const double act = exact.misses(w);
    // Set sampling is a statistical estimate: within 15% + small absolute slack.
    EXPECT_NEAR(est, act, act * 0.15 + 50.0) << "w=" << w;
  }
}

TEST(Atd, ObserveReturnsRecencyForSampledSets) {
  AtdConfig cfg;
  cfg.sets = 4;
  cfg.sample_period = 2;
  Atd atd(cfg);
  EXPECT_EQ(atd.observe({1, 0, 10, false}), kRecencyMiss);  // sampled, cold
  EXPECT_EQ(atd.observe({2, 0, 10, false}), 0);             // sampled, hit
  EXPECT_EQ(atd.observe({3, 1, 10, false}), kRecencyMiss);  // unsampled
  EXPECT_EQ(atd.observed(), 2u);
}

TEST(Atd, CountersAccumulateHitsPerPosition) {
  AtdConfig cfg;
  cfg.sets = 1;
  Atd atd(cfg);
  atd.observe({1, 0, 10, false});
  atd.observe({2, 0, 11, false});
  atd.observe({3, 0, 10, false});  // hit at position 1
  EXPECT_EQ(atd.hit_counters()[1], 1u);
  EXPECT_EQ(atd.atd_misses(), 2u);
}

TEST(Atd, ResetCountersKeepsTags) {
  AtdConfig cfg;
  cfg.sets = 1;
  Atd atd(cfg);
  atd.observe({1, 0, 10, false});
  atd.reset_counters();
  EXPECT_EQ(atd.atd_misses(), 0u);
  EXPECT_EQ(atd.observe({2, 0, 10, false}), 0);  // still resident
}

TEST(Atd, CounterSaturationRespectsBitWidth) {
  AtdConfig cfg;
  cfg.sets = 1;
  cfg.counter_bits = 8;
  Atd atd(cfg);
  for (int i = 0; i < 300; ++i) {
    atd.observe({static_cast<std::uint64_t>(i), 0,
                 static_cast<std::uint64_t>(i) + 1000, false});
  }
  EXPECT_EQ(atd.atd_misses(), 255u);
}

TEST(Atd, MissCurveMonotoneOnRandomStreams) {
  for (const std::uint64_t seed : {3u, 17u, 23u}) {
    const auto trace = random_trace(30000, 16, 300, seed);
    AtdConfig cfg;
    cfg.sets = 16;
    Atd atd(cfg);
    for (const auto& a : trace) atd.observe(a);
    const MissCurve curve = atd.miss_curve();
    for (int w = 2; w <= 16; ++w) {
      EXPECT_LE(curve.misses(w), curve.misses(w - 1));
    }
  }
}

}  // namespace
}  // namespace qosrm::cache
