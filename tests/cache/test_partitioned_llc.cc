#include "cache/partitioned_llc.hh"

#include <gtest/gtest.h>

#include "cache/recency.hh"
#include "common/rng.hh"

namespace qosrm::cache {
namespace {

TEST(PartitionedLlc, IsolationBetweenCores) {
  PartitionedLlc llc(4, {8, 8});
  // Core 0 and core 1 use the same (set, tag); partitions are independent.
  EXPECT_FALSE(llc.access(0, {1, 0, 42, false}));
  EXPECT_FALSE(llc.access(1, {2, 0, 42, false}));
  EXPECT_TRUE(llc.access(0, {3, 0, 42, false}));
  EXPECT_TRUE(llc.access(1, {4, 0, 42, false}));
}

TEST(PartitionedLlc, InsertionNeverEvictsOtherCore) {
  PartitionedLlc llc(1, {2, 2});
  llc.access(1, {1, 0, 7, false});
  // Core 0 streams through many blocks; core 1's block must survive.
  for (std::uint64_t t = 100; t < 150; ++t) llc.access(0, {t, 0, t, false});
  EXPECT_TRUE(llc.access(1, {200, 0, 7, false}));
}

TEST(PartitionedLlc, AllocationBoundsResidency) {
  PartitionedLlc llc(1, {2, 14});
  llc.access(0, {1, 0, 1, false});
  llc.access(0, {2, 0, 2, false});
  llc.access(0, {3, 0, 3, false});  // evicts logically: only 2 ways
  EXPECT_FALSE(llc.access(0, {4, 0, 1, false}));
}

TEST(PartitionedLlc, ShrinkDropsColdTail) {
  PartitionedLlc llc(1, {8, 8});
  for (std::uint64_t t = 1; t <= 8; ++t) llc.access(0, {t, 0, t, false});
  llc.set_allocation(0, 2);
  // Only the two most recent tags still hit.
  EXPECT_TRUE(llc.access(0, {10, 0, 8, false}));
  EXPECT_FALSE(llc.access(0, {12, 0, 3, false}));
}

TEST(PartitionedLlc, GrowRetainsResidentBlocks) {
  PartitionedLlc llc(1, {2, 8});
  llc.access(0, {1, 0, 1, false});
  llc.access(0, {2, 0, 2, false});
  llc.set_allocation(0, 8);
  EXPECT_TRUE(llc.access(0, {3, 0, 1, false}));
  EXPECT_TRUE(llc.access(0, {4, 0, 2, false}));
}

TEST(PartitionedLlc, HitMissCountersPerCore) {
  PartitionedLlc llc(2, {4, 4});
  llc.access(0, {1, 0, 1, false});
  llc.access(0, {2, 0, 1, false});
  llc.access(1, {3, 1, 9, false});
  EXPECT_EQ(llc.misses(0), 1u);
  EXPECT_EQ(llc.hits(0), 1u);
  EXPECT_EQ(llc.misses(1), 1u);
  EXPECT_EQ(llc.hits(1), 0u);
  llc.reset_counters();
  EXPECT_EQ(llc.misses(0) + llc.hits(0) + llc.misses(1) + llc.hits(1), 0u);
}

TEST(PartitionedLlc, MatchesPrivateCacheOfSameWays) {
  // A partition with w ways over shared sets behaves exactly like a private
  // w-way cache: cross-check against RecencyProfiler annotation.
  Rng rng(77);
  PartitionedLlc llc(8, {5, 11});
  RecencyProfiler prof(8, 16);
  for (int i = 0; i < 20000; ++i) {
    LlcAccess a{static_cast<std::uint64_t>(i),
                static_cast<std::uint32_t>(rng.uniform_u64(8)),
                rng.uniform_u64(60), false};
    const bool hit = llc.access(0, a);
    const std::uint8_t r = prof.observe(a);
    EXPECT_EQ(hit, !misses_at(r, 5)) << "access " << i;
  }
}

TEST(PartitionedLlc, AccessorsValidateAndReport) {
  PartitionedLlc llc(16, {3, 9, 4});
  EXPECT_EQ(llc.cores(), 3);
  EXPECT_EQ(llc.sets(), 16);
  EXPECT_EQ(llc.allocation(0), 3);
  EXPECT_EQ(llc.allocation(1), 9);
  llc.set_allocation(2, 16);
  EXPECT_EQ(llc.allocation(2), 16);
}

}  // namespace
}  // namespace qosrm::cache
