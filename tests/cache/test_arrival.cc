#include "cache/arrival.hh"

#include <gtest/gtest.h>

#include "cache/recency.hh"

namespace qosrm::cache {
namespace {

std::vector<std::uint8_t> all_miss(std::size_t n) {
  return std::vector<std::uint8_t>(n, kRecencyMiss);
}

TEST(Arrival, IndependentLoadsArriveInProgramOrder) {
  std::vector<LlcAccess> trace = {
      {10, 0, 1, false}, {20, 0, 2, false}, {30, 0, 3, false}};
  const auto order = emulate_arrival_order(trace, all_miss(3), {});
  EXPECT_EQ(order, (std::vector<std::uint32_t>{0, 1, 2}));
}

TEST(Arrival, DependentLoadBehindMissIsDelayed) {
  // Load 1 depends on load 0 (a miss): its arrival is pushed past load 2.
  std::vector<LlcAccess> trace = {
      {10, 0, 1, false}, {20, 0, 2, true}, {30, 0, 3, false}};
  ArrivalParams params;
  params.mem_latency_cycles = 200;
  params.dispatch_ipc = 2.0;
  const auto order = emulate_arrival_order(trace, all_miss(3), params);
  EXPECT_EQ(order, (std::vector<std::uint32_t>{0, 2, 1}));
}

TEST(Arrival, DependentLoadBehindHitIsNotDelayed) {
  std::vector<LlcAccess> trace = {
      {10, 0, 1, false}, {20, 0, 2, true}, {30, 0, 3, false}};
  std::vector<std::uint8_t> recency = {0, kRecencyMiss, kRecencyMiss};  // 0 hits
  const auto order = emulate_arrival_order(trace, recency, {});
  EXPECT_EQ(order, (std::vector<std::uint32_t>{0, 1, 2}));
}

TEST(Arrival, ChainDelaysAccumulate) {
  // 0 -> 1 -> 2 chained behind misses: 2 arrives after the independent 3
  // even though 3 dispatches much later.
  std::vector<LlcAccess> trace = {
      {10, 0, 1, false}, {20, 0, 2, true}, {30, 0, 3, true}, {500, 0, 4, false}};
  ArrivalParams params;
  params.mem_latency_cycles = 300;
  params.dispatch_ipc = 2.0;
  const auto order = emulate_arrival_order(trace, all_miss(4), params);
  // Dispatch cycles: 5, 10, 15, 250. Chain delays: 0, 300, 600, 0.
  // Arrival times: 5, 310, 615, 250 -> order 0, 3, 1, 2.
  EXPECT_EQ(order, (std::vector<std::uint32_t>{0, 3, 1, 2}));
}

TEST(Arrival, IndependentLoadResetsChain) {
  std::vector<LlcAccess> trace = {
      {10, 0, 1, false}, {20, 0, 2, true}, {40, 0, 3, false}, {50, 0, 4, true}};
  ArrivalParams params;
  params.mem_latency_cycles = 100;
  const auto order = emulate_arrival_order(trace, all_miss(4), params);
  // Arrivals: 5, 110, 20, 125: order 0, 2, 1, 3.
  EXPECT_EQ(order, (std::vector<std::uint32_t>{0, 2, 1, 3}));
}

TEST(Arrival, AllocationDecidesWhoMisses) {
  // With a generous allocation the producer hits, so the consumer is not
  // delayed; with a tiny one it is.
  std::vector<LlcAccess> trace = {{10, 0, 1, false},  // recency 3
                                  {20, 0, 2, true},
                                  {30, 0, 3, false}};
  std::vector<std::uint8_t> recency = {3, kRecencyMiss, kRecencyMiss};
  ArrivalParams big;
  big.ways = 8;
  EXPECT_EQ(emulate_arrival_order(trace, recency, big),
            (std::vector<std::uint32_t>{0, 1, 2}));
  ArrivalParams tiny;
  tiny.ways = 2;
  EXPECT_EQ(emulate_arrival_order(trace, recency, tiny),
            (std::vector<std::uint32_t>{0, 2, 1}));
}

TEST(Arrival, PermutationIsComplete) {
  std::vector<LlcAccess> trace;
  for (int i = 0; i < 100; ++i) {
    trace.push_back({static_cast<std::uint64_t>(10 * i + 1), 0,
                     static_cast<std::uint64_t>(i), i % 3 == 1});
  }
  const auto order = emulate_arrival_order(trace, all_miss(100), {});
  std::vector<bool> seen(100, false);
  for (const std::uint32_t pos : order) {
    ASSERT_LT(pos, 100u);
    EXPECT_FALSE(seen[pos]);
    seen[pos] = true;
  }
}

}  // namespace
}  // namespace qosrm::cache
