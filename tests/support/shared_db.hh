// Shared SimDb instance for database-heavy tests: characterizing the full
// 27-app suite takes a few seconds, so tests within one binary share one
// database per core count.
#ifndef QOSRM_TESTS_SUPPORT_SHARED_DB_HH
#define QOSRM_TESTS_SUPPORT_SHARED_DB_HH

#include <map>
#include <memory>

#include "power/power_model.hh"
#include "workload/sim_db.hh"

namespace qosrm::testing {

inline const workload::SimDb& shared_db(int cores = 2) {
  static std::map<int, std::unique_ptr<workload::SimDb>> dbs;
  auto it = dbs.find(cores);
  if (it == dbs.end()) {
    arch::SystemConfig system;
    system.cores = cores;
    const power::PowerModel power;
    it = dbs.emplace(cores, std::make_unique<workload::SimDb>(
                                workload::spec_suite(), system, power))
             .first;
  }
  return *it->second;
}

}  // namespace qosrm::testing

#endif  // QOSRM_TESTS_SUPPORT_SHARED_DB_HH
