// Shared SimDb instance for database-heavy tests: characterizing the full
// 27-app suite takes a few seconds, so tests within one binary share one
// database per (core count, bandwidth-share count).
//
// When QOSRM_DB_CACHE_DIR is set, the database is restored from (or saved
// to) a binary snapshot under that directory, so a whole `ctest -L slow` run
// pays the characterization cost once instead of once per test binary. A
// stale snapshot is rejected (warning on stderr) and rebuilt.
#ifndef QOSRM_TESTS_SUPPORT_SHARED_DB_HH
#define QOSRM_TESTS_SUPPORT_SHARED_DB_HH

#include <cstdlib>
#include <map>
#include <memory>
#include <string>
#include <utility>

#include "power/power_model.hh"
#include "workload/db_io.hh"
#include "workload/sim_db.hh"

namespace qosrm::testing {

inline const workload::SimDb& shared_db(int cores = 2, int bw_shares = 1) {
  static std::map<std::pair<int, int>, std::unique_ptr<workload::SimDb>> dbs;
  const std::pair<int, int> key{cores, bw_shares};
  auto it = dbs.find(key);
  if (it == dbs.end()) {
    arch::SystemConfig system;
    system.cores = cores;
    system.bw = arch::bw_config_for_shares(bw_shares);
    const power::PowerModel power;
    const char* cache_dir = std::getenv("QOSRM_DB_CACHE_DIR");
    const std::string cache_path =
        cache_dir != nullptr
            ? workload::db_cache_path(cache_dir, cores, bw_shares)
            : std::string();
    it = dbs.emplace(key,
                     std::make_unique<workload::SimDb>(workload::warm_simdb(
                         workload::spec_suite(), system, power, {}, cache_path)))
             .first;
  }
  return *it->second;
}

}  // namespace qosrm::testing

#endif  // QOSRM_TESTS_SUPPORT_SHARED_DB_HH
