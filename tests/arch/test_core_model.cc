#include "arch/core_model.hh"

#include <gtest/gtest.h>

#include "arch/dvfs.hh"

namespace qosrm::arch {
namespace {

IntervalCharacteristics chars(double instr = 100e6, double ilp = 4.0,
                              double bp = 0.05, double cc = 0.10) {
  return {instr, ilp, bp, cc};
}

MemoryBehaviour mem(double misses = 0.0, double lm = 0.0) {
  return {misses, lm, 100e-9};
}

TEST(CoreModel, EffectiveIpcSaturates) {
  // IPC approaches min(D, ILP) from below.
  EXPECT_LT(effective_ipc(CoreSize::L, 100.0), 8.0);
  EXPECT_GT(effective_ipc(CoreSize::L, 100.0), 7.0);
  EXPECT_LT(effective_ipc(CoreSize::S, 100.0), 2.0);
}

TEST(CoreModel, EffectiveIpcGrowsWithWidthAndIlp) {
  EXPECT_GT(effective_ipc(CoreSize::M, 4.0), effective_ipc(CoreSize::S, 4.0));
  EXPECT_GT(effective_ipc(CoreSize::L, 4.0), effective_ipc(CoreSize::M, 4.0));
  EXPECT_GT(effective_ipc(CoreSize::M, 6.0), effective_ipc(CoreSize::M, 2.0));
}

TEST(CoreModel, WindowIlpFactorOrdered) {
  EXPECT_LT(window_ilp_factor(CoreSize::S), 1.0);
  EXPECT_DOUBLE_EQ(window_ilp_factor(CoreSize::M), 1.0);
  EXPECT_GT(window_ilp_factor(CoreSize::L), 1.0);
}

TEST(CoreModel, WidthCyclesScaleExactlyWithDispatchWidth) {
  const auto t_m = evaluate_interval(chars(), mem(), CoreSize::M, 2e9);
  const auto t_l = evaluate_interval(chars(), mem(), CoreSize::L, 2e9);
  EXPECT_DOUBLE_EQ(t_m.width_cycles, 100e6 / 4.0);
  EXPECT_DOUBLE_EQ(t_l.width_cycles, 100e6 / 8.0);
}

TEST(CoreModel, BranchAndCacheCyclesSizeInvariant) {
  const auto t_s = evaluate_interval(chars(), mem(), CoreSize::S, 2e9);
  const auto t_l = evaluate_interval(chars(), mem(), CoreSize::L, 2e9);
  EXPECT_DOUBLE_EQ(t_s.branch_cycles, t_l.branch_cycles);
  EXPECT_DOUBLE_EQ(t_s.cache_cycles, t_l.cache_cycles);
}

TEST(CoreModel, CoreTimeScalesInverselyWithFrequency) {
  const auto slow = evaluate_interval(chars(), mem(), CoreSize::M, 1e9);
  const auto fast = evaluate_interval(chars(), mem(), CoreSize::M, 2e9);
  EXPECT_NEAR(slow.core_seconds, 2.0 * fast.core_seconds, 1e-12);
}

TEST(CoreModel, MemTimeIsFrequencyInvariant) {
  const auto slow = evaluate_interval(chars(), mem(1e6, 2e5), CoreSize::M, 1e9);
  const auto fast = evaluate_interval(chars(), mem(1e6, 2e5), CoreSize::M, 3e9);
  EXPECT_DOUBLE_EQ(slow.mem_seconds, fast.mem_seconds);
  EXPECT_DOUBLE_EQ(slow.mem_seconds, 2e5 * 100e-9);
}

TEST(CoreModel, OnlyLeadingMissesStallTheCore) {
  // 1M misses but only 100K leading -> stall time uses the leading count.
  const auto t = evaluate_interval(chars(), mem(1e6, 1e5), CoreSize::M, 2e9);
  EXPECT_DOUBLE_EQ(t.mem_seconds, 1e5 * 100e-9);
}

TEST(CoreModel, TotalIsCorePlusMem) {
  const auto t = evaluate_interval(chars(), mem(5e5, 1e5), CoreSize::M, 2e9);
  EXPECT_DOUBLE_EQ(t.total_seconds, t.core_seconds + t.mem_seconds);
  EXPECT_DOUBLE_EQ(t.busy_cycles(), t.width_cycles + t.ilp_cycles +
                                        t.branch_cycles + t.cache_cycles);
}

TEST(CoreModel, BiggerCoreNeverSlowerSameFrequency) {
  // With non-decreasing window factors and same leading misses, upsizing
  // cannot hurt at a fixed frequency.
  for (const double ilp : {1.2, 2.0, 4.0, 8.0}) {
    const auto t_s =
        evaluate_interval(chars(100e6, ilp), mem(1e5, 5e4), CoreSize::S, 2e9);
    const auto t_m =
        evaluate_interval(chars(100e6, ilp), mem(1e5, 5e4), CoreSize::M, 2e9);
    const auto t_l =
        evaluate_interval(chars(100e6, ilp), mem(1e5, 5e4), CoreSize::L, 2e9);
    EXPECT_LE(t_m.total_seconds, t_s.total_seconds) << "ilp=" << ilp;
    EXPECT_LE(t_l.total_seconds, t_m.total_seconds) << "ilp=" << ilp;
  }
}

TEST(CoreModel, LowIlpShrinksWidthBenefit) {
  // At ILP 1.2 the M->L speedup must be well below the 2x width ratio.
  const auto t_m = evaluate_interval(chars(100e6, 1.2, 0, 0), mem(), CoreSize::M, 2e9);
  const auto t_l = evaluate_interval(chars(100e6, 1.2, 0, 0), mem(), CoreSize::L, 2e9);
  const double speedup = t_m.total_seconds / t_l.total_seconds;
  EXPECT_LT(speedup, 1.25);
  EXPECT_GT(speedup, 1.0);
}

}  // namespace
}  // namespace qosrm::arch
