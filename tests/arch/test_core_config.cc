#include "arch/core_config.hh"

#include <gtest/gtest.h>

namespace qosrm::arch {
namespace {

TEST(CoreConfig, TableIParameters) {
  // Paper Table I, verbatim.
  const CoreParams& s = core_params(CoreSize::S);
  EXPECT_EQ(s.issue_width, 2);
  EXPECT_EQ(s.rob, 64);
  EXPECT_EQ(s.rs, 16);
  EXPECT_EQ(s.lsq, 10);

  const CoreParams& m = core_params(CoreSize::M);
  EXPECT_EQ(m.issue_width, 4);
  EXPECT_EQ(m.rob, 128);
  EXPECT_EQ(m.rs, 64);
  EXPECT_EQ(m.lsq, 32);

  const CoreParams& l = core_params(CoreSize::L);
  EXPECT_EQ(l.issue_width, 8);
  EXPECT_EQ(l.rob, 256);
  EXPECT_EQ(l.rs, 128);
  EXPECT_EQ(l.lsq, 64);
}

TEST(CoreConfig, BaselineIsMedium) {
  EXPECT_EQ(kBaselineCoreSize, CoreSize::M);
}

TEST(CoreConfig, EnergyScalesOrderedBySize) {
  // Energy per instruction and leakage must grow with core size - the
  // "roughly linear relation between core size and energy" premise.
  EXPECT_LT(core_params(CoreSize::S).epi_scale, core_params(CoreSize::M).epi_scale);
  EXPECT_LT(core_params(CoreSize::M).epi_scale, core_params(CoreSize::L).epi_scale);
  EXPECT_LT(core_params(CoreSize::S).leak_scale, core_params(CoreSize::M).leak_scale);
  EXPECT_LT(core_params(CoreSize::M).leak_scale, core_params(CoreSize::L).leak_scale);
  EXPECT_DOUBLE_EQ(core_params(CoreSize::M).epi_scale, 1.0);
  EXPECT_DOUBLE_EQ(core_params(CoreSize::M).leak_scale, 1.0);
}

TEST(CoreConfig, UpsizingCostsLessThanQuadratic) {
  // The core-size energy trade must be cheaper than the DVFS V^2 cost for
  // the same nominal speedup - the paper's central premise. Doubling width
  // (M->L) costs epi_scale(L); doubling frequency-equivalent throughput via
  // VF would cost ~ (V(hi)/V(lo))^2 * 2 in power.
  EXPECT_LT(core_params(CoreSize::L).epi_scale, 2.0);
}

TEST(CoreConfig, MaxRobMatchesLargestCore) {
  EXPECT_EQ(max_rob(), 256);
}

TEST(CoreConfig, NamesAndIndices) {
  EXPECT_EQ(core_size_name(CoreSize::S), "S");
  EXPECT_EQ(core_size_name(CoreSize::M), "M");
  EXPECT_EQ(core_size_name(CoreSize::L), "L");
  EXPECT_EQ(core_size_index(CoreSize::S), 0);
  EXPECT_EQ(core_size_index(CoreSize::M), 1);
  EXPECT_EQ(core_size_index(CoreSize::L), 2);
  EXPECT_EQ(kAllCoreSizes.size(), static_cast<std::size_t>(kNumCoreSizes));
}

}  // namespace
}  // namespace qosrm::arch
