#include "arch/dvfs.hh"

#include <gtest/gtest.h>

namespace qosrm::arch {
namespace {

TEST(Dvfs, TableCoversPaperRange) {
  // Table I: per-core range 1 - 3.25 GHz, 0.8 - 1.25 V.
  EXPECT_DOUBLE_EQ(VfTable::frequency_hz(0), 1.0e9);
  EXPECT_DOUBLE_EQ(VfTable::frequency_hz(VfTable::kNumPoints - 1), 3.25e9);
  EXPECT_DOUBLE_EQ(VfTable::voltage(0), 0.80);
  EXPECT_DOUBLE_EQ(VfTable::voltage(VfTable::kNumPoints - 1), 1.25);
}

TEST(Dvfs, BaselineIsTwoGigahertzOneVolt) {
  const OperatingPoint base = VfTable::baseline();
  EXPECT_DOUBLE_EQ(base.freq_hz, 2.0e9);
  EXPECT_DOUBLE_EQ(base.voltage, 1.0);
}

TEST(Dvfs, MonotoneFrequencyAndVoltage) {
  for (int i = 1; i < VfTable::kNumPoints; ++i) {
    EXPECT_GT(VfTable::frequency_hz(i), VfTable::frequency_hz(i - 1));
    EXPECT_GT(VfTable::voltage(i), VfTable::voltage(i - 1));
  }
}

TEST(Dvfs, IndexAtLeastFindsCeiling) {
  EXPECT_EQ(VfTable::index_at_least(0.5e9), 0);
  EXPECT_EQ(VfTable::index_at_least(1.0e9), 0);
  EXPECT_EQ(VfTable::index_at_least(1.01e9), 1);
  EXPECT_EQ(VfTable::index_at_least(2.0e9), VfTable::kBaselineIndex);
  EXPECT_EQ(VfTable::index_at_least(99e9), VfTable::kNumPoints - 1);
}

TEST(Dvfs, IndexAtLeastIsConsistentWithTable) {
  for (int i = 0; i < VfTable::kNumPoints; ++i) {
    EXPECT_EQ(VfTable::index_at_least(VfTable::frequency_hz(i)), i);
  }
}

TEST(Dvfs, TransitionCostMatchesPaper) {
  // Section III-E: 15 us and 3 uJ per DVFS change (Exynos 4210 numbers).
  const DvfsTransitionCost cost;
  EXPECT_DOUBLE_EQ(cost.time_s, 15e-6);
  EXPECT_DOUBLE_EQ(cost.energy_j, 3e-6);
}

TEST(Dvfs, PointBundlesFrequencyAndVoltage) {
  for (int i = 0; i < VfTable::kNumPoints; ++i) {
    const OperatingPoint p = VfTable::point(i);
    EXPECT_DOUBLE_EQ(p.freq_hz, VfTable::frequency_hz(i));
    EXPECT_DOUBLE_EQ(p.voltage, VfTable::voltage(i));
  }
}

}  // namespace
}  // namespace qosrm::arch
