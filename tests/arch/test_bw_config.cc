// Memory-bandwidth partitioning configuration (the CBP third knob,
// arXiv:2102.11528). The load-bearing property is the DEGENERATE-CASE
// guarantee: an unpartitioned config must scale nothing - bit for bit - so
// every pre-CBP golden stays byte-identical.
#include "arch/system_config.hh"

#include <gtest/gtest.h>

namespace qosrm::arch {
namespace {

TEST(BwConfig, DefaultIsDegenerate) {
  const BwConfig bw;
  EXPECT_TRUE(bw.degenerate());
  EXPECT_EQ(bw.num_allocations(), 1);
  EXPECT_EQ(bw.total_shares(4), 4);
  const SystemConfig sys;
  EXPECT_TRUE(sys.bw.degenerate());
  EXPECT_EQ(sys.total_shares(), sys.cores);
}

TEST(BwConfig, LatencyScaleIsExactlyOneAtBaseline) {
  // b_base/b == 1.0 exactly, so the scale is the literal double 1.0 and any
  // product taken with it is bitwise unchanged - the mechanism behind the
  // golden byte-identity at bw_shares=1.
  for (int base : {1, 2, 3, 4, 8}) {
    BwConfig bw = bw_config_for_shares(base);
    EXPECT_EQ(bw_latency_scale(bw, base), 1.0) << "baseline " << base;
    const double latency = 41.7e-9;
    EXPECT_EQ(latency * bw_latency_scale(bw, base), latency);
  }
}

TEST(BwConfig, LatencyRisesWhenSharesShrinkAndFloorsWhenTheyGrow) {
  const BwConfig bw = bw_config_for_shares(4);  // min 3, max 5
  const double at_min = bw_latency_scale(bw, 3);
  const double at_base = bw_latency_scale(bw, 4);
  const double at_max = bw_latency_scale(bw, 5);
  EXPECT_GT(at_min, at_base);
  EXPECT_LT(at_max, at_base);
  // 1 + 0.5*(4/3 - 1) ; 1 + 0.5*(4/5 - 1).
  EXPECT_DOUBLE_EQ(at_min, 1.0 + 0.5 * (4.0 / 3.0 - 1.0));
  EXPECT_DOUBLE_EQ(at_max, 1.0 + 0.5 * (4.0 / 5.0 - 1.0));
  // The floor as b -> inf is 1 - contention.
  EXPECT_GT(at_max, 1.0 - bw.contention);
}

TEST(BwConfig, ScaleClampsOutOfRangeShares) {
  const BwConfig bw = bw_config_for_shares(4);  // min 3, max 5
  EXPECT_EQ(bw_latency_scale(bw, 0), bw_latency_scale(bw, 3));
  EXPECT_EQ(bw_latency_scale(bw, 2), bw_latency_scale(bw, 3));
  EXPECT_EQ(bw_latency_scale(bw, 6), bw_latency_scale(bw, 5));
  EXPECT_EQ(bw_latency_scale(bw, 100), bw_latency_scale(bw, 5));
}

TEST(BwConfig, ForSharesMapsTheCliKnob) {
  // N <= 1 collapses to the degenerate config, not merely a 1-wide range.
  EXPECT_TRUE(bw_config_for_shares(0).degenerate());
  EXPECT_TRUE(bw_config_for_shares(1).degenerate());
  // N >= 2: baseline N, range N +- max(1, N/4) - deliberately narrow so
  // the (ways x shares) DP grid stays within the invoke-latency budget.
  const BwConfig two = bw_config_for_shares(2);
  EXPECT_FALSE(two.degenerate());
  EXPECT_EQ(two.shares_per_core_baseline, 2);
  EXPECT_EQ(two.min_shares, 1);
  EXPECT_EQ(two.max_shares, 3);
  const BwConfig four = bw_config_for_shares(4);
  EXPECT_EQ(four.min_shares, 3);
  EXPECT_EQ(four.max_shares, 5);
  EXPECT_EQ(four.num_allocations(), 3);
  const BwConfig eight = bw_config_for_shares(8);
  EXPECT_EQ(eight.min_shares, 6);
  EXPECT_EQ(eight.max_shares, 10);
  // The baseline allocation is always inside the range.
  for (int n = 1; n <= 16; ++n) {
    const BwConfig bw = bw_config_for_shares(n);
    EXPECT_LE(bw.min_shares, bw.shares_per_core_baseline) << n;
    EXPECT_GE(bw.max_shares, bw.shares_per_core_baseline) << n;
    EXPECT_GE(bw.min_shares, 1) << n;
  }
}

}  // namespace
}  // namespace qosrm::arch
