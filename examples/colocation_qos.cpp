// Colocation under QoS: a datacenter-style scenario on a 4-core system.
//
// Two latency-critical, cache-sensitive services (mcf-, xalancbmk-like)
// colocate with two streaming batch analytics jobs (bwaves-, libquantum-
// like). Every application carries a hard QoS constraint (no slower than
// the even-share baseline). The example runs the idle RM, prior-art RM2 and
// the proposed RM3, prints a timeline of the settings RM3 picks, and
// reports energy and QoS outcomes - the deployment story the paper's
// introduction motivates.
#include <cstdio>
#include <map>

#include "common/cli.hh"
#include "common/table.hh"
#include "rmsim/experiment.hh"

using namespace qosrm;

int main(int argc, char** argv) {
  CliArgs args(argc, argv);

  arch::SystemConfig system;
  system.cores = 4;
  const power::PowerModel power;
  std::printf("building simulation database (27 apps x phases)...\n");
  const workload::SimDb db(workload::spec_suite(), system, power);

  workload::WorkloadMix mix;
  mix.name = "colocation";
  mix.scenario = workload::Scenario::One;
  const char* services[] = {"mcf", "xalancbmk", "bwaves", "libquantum"};
  for (const char* name : services) {
    mix.app_ids.push_back(db.suite().index_of(name));
  }

  rmsim::ExperimentRunner runner(db);

  std::printf("\ncolocated workload: LC services {mcf, xalancbmk} + batch "
              "{bwaves, libquantum}\n\n");
  AsciiTable outcome({"RM", "Energy [J]", "Savings", "QoS violations",
                      "worst violation"});
  for (const rm::RmPolicy policy :
       {rm::RmPolicy::Idle, rm::RmPolicy::Rm2, rm::RmPolicy::Rm3}) {
    rm::RmConfig cfg;
    cfg.policy = policy;
    cfg.model = rm::PerfModelKind::Model3;
    const rmsim::SavingsResult r = runner.run(mix, cfg);
    double worst = 0.0;
    for (const rmsim::CoreResult& c : r.run.cores) {
      worst = std::max(worst, c.violation_max);
    }
    outcome.add_row({rm::rm_policy_name(policy),
                     AsciiTable::num(r.run.total_energy_j(), 2),
                     AsciiTable::pct(r.savings),
                     std::to_string(r.run.total_violations()) + "/" +
                         std::to_string(r.run.total_intervals()),
                     AsciiTable::pct(worst)});
  }
  outcome.print();

  // Steady-state settings chosen by RM3: aggregate the most common setting
  // per core over the run.
  std::printf("\nRM3 steady-state settings per service:\n");
  rm::RmConfig cfg;
  cfg.policy = rm::RmPolicy::Rm3;
  cfg.model = rm::PerfModelKind::Model3;
  std::map<int, std::map<std::string, int>> setting_votes;
  const rmsim::IntervalSimulator sim(db);
  (void)sim.run(mix, cfg, [&](const rmsim::IntervalObservation& obs) {
    char key[48];
    std::snprintf(key, sizeof(key), "%s @ %.2f GHz, %2d ways",
                  arch::core_size_name(obs.setting.c).data(),
                  arch::VfTable::frequency_hz(obs.setting.f_idx) / 1e9,
                  obs.setting.w);
    ++setting_votes[obs.core][key];
  });
  AsciiTable settings({"Core", "Service", "Dominant setting", "Share"});
  for (const auto& [core, votes] : setting_votes) {
    int total = 0, best = 0;
    std::string best_key;
    for (const auto& [key, count] : votes) {
      total += count;
      if (count > best) {
        best = count;
        best_key = key;
      }
    }
    settings.add_row({std::to_string(core), services[core], best_key,
                      AsciiTable::pct(static_cast<double>(best) / total, 0)});
  }
  settings.print();

  std::printf("\nReading: the cache-sensitive services absorb LLC ways from\n"
              "the streaming jobs; the batch jobs upsize to L cores to keep\n"
              "their memory parallelism and drop to low VF - everyone meets\n"
              "QoS while system energy falls.\n");
  return 0;
}
