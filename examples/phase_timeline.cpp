// Phase timeline: visualize how RM3 adapts a core's setting as the
// application moves through its phases.
//
//   $ ./examples/phase_timeline [--app=mcf] [--partner=libquantum]
//                               [--intervals=48]
//
// Prints one row per interval of the observed core: the phase that ran,
// the setting the RM had chosen, the interval's time vs the QoS bound, and
// an ASCII energy bar - making the control loop's behaviour (phase change
// -> one-interval lag -> new setting) directly visible.
#include <algorithm>
#include <cstdio>
#include <vector>

#include "common/cli.hh"
#include "rmsim/experiment.hh"

using namespace qosrm;

int main(int argc, char** argv) {
  CliArgs args(argc, argv);
  const std::string app_name = args.get("app", "mcf");
  const std::string partner_name = args.get("partner", "libquantum");
  const auto max_rows = args.get_int("intervals", 48);

  arch::SystemConfig system;
  system.cores = 2;
  const power::PowerModel power;
  std::printf("building simulation database...\n");
  const workload::SimDb db(workload::spec_suite(), system, power);

  const int app = db.suite().index_of(app_name);
  const int partner = db.suite().index_of(partner_name);
  if (app < 0 || partner < 0) {
    std::fprintf(stderr, "unknown application\n");
    return 1;
  }

  workload::WorkloadMix mix;
  mix.name = "timeline";
  mix.scenario = workload::Scenario::One;
  mix.app_ids = {app, partner};

  rm::RmConfig cfg;
  cfg.policy = rm::RmPolicy::Rm3;
  cfg.model = rm::PerfModelKind::Model3;

  struct Row {
    int phase;
    workload::Setting setting;
    double duration_s;
    double base_s;
    double energy_j;
  };
  std::vector<Row> rows;
  double idle_energy = 0.0;  // per-interval baseline energy for the bar scale

  const rmsim::IntervalSimulator sim(db);
  (void)sim.run(mix, cfg, [&](const rmsim::IntervalObservation& obs) {
    if (obs.core != 0 || static_cast<std::int64_t>(rows.size()) >= max_rows) {
      return;
    }
    const double base_s = db.baseline_time(obs.app, obs.phase);
    rows.push_back({obs.phase, obs.setting, obs.duration_s, base_s, obs.energy_j});
    idle_energy = std::max(
        idle_energy,
        db.energy(obs.app, obs.phase, workload::baseline_setting(system)).total_j());
  });

  std::printf("\ncore 0 runs %s (partner: %s), RM3/Model3; QoS bound = "
              "baseline time per phase\n\n",
              app_name.c_str(), partner_name.c_str());
  std::printf("%-4s %-6s %-18s %-9s %-9s %-5s %s\n", "intv", "phase", "setting",
              "time", "bound", "QoS", "energy (# = 5% of baseline)");
  for (std::size_t i = 0; i < rows.size(); ++i) {
    const Row& r = rows[i];
    char setting[32];
    std::snprintf(setting, sizeof(setting), "%s @ %.2fGHz %2dw",
                  arch::core_size_name(r.setting.c).data(),
                  arch::VfTable::frequency_hz(r.setting.f_idx) / 1e9,
                  r.setting.w);
    const bool ok = r.duration_s <= r.base_s * 1.002;
    const int bars = static_cast<int>(r.energy_j / idle_energy * 20.0);
    std::printf("%-4zu p%-5d %-18s %6.1fms %6.1fms  %-4s %s\n", i, r.phase,
                setting, r.duration_s * 1e3, r.base_s * 1e3, ok ? "ok" : "VIOL",
                std::string(static_cast<std::size_t>(std::max(0, bars)), '#')
                    .c_str());
  }

  std::printf("\nNote the one-interval adaptation lag after each phase\n"
              "change: the RM tunes interval i+1 from interval i's counters.\n");
  return 0;
}
