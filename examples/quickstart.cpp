// Quickstart: build the simulation database, classify two applications,
// and compare the three resource managers on a 2-core QoS workload.
//
//   $ ./examples/quickstart [--app1=mcf] [--app2=libquantum]
//
// This walks the whole public API surface in ~60 lines: SpecSuite -> SimDb
// -> classification -> WorkloadMix -> ExperimentRunner -> savings.
#include <cstdio>

#include "common/cli.hh"
#include "rmsim/experiment.hh"
#include "workload/classify.hh"

using namespace qosrm;

int main(int argc, char** argv) {
  CliArgs args(argc, argv);
  const std::string app1 = args.get("app1", "mcf");
  const std::string app2 = args.get("app2", "libquantum");

  // 1. The application suite and a 2-core system (paper Table I).
  const workload::SpecSuite& suite = workload::spec_suite();
  arch::SystemConfig system;
  system.cores = 2;

  // 2. Characterize every phase once (the "Sniper+McPAT database").
  std::printf("building simulation database...\n");
  const power::PowerModel power;
  const workload::SimDb db(suite, system, power);

  // 3. Classify the two applications with the paper's criteria.
  for (const std::string& name : {app1, app2}) {
    const int idx = suite.index_of(name);
    if (idx < 0) {
      std::fprintf(stderr, "unknown application: %s\n", name.c_str());
      return 1;
    }
    const workload::AppClassification cls = workload::classify_app(db, idx);
    std::printf("%-12s -> %s  (MPKI@8w %.2f, MLP S/M/L %.2f/%.2f/%.2f)\n",
                name.c_str(), workload::category_name(cls.category()),
                cls.mpki_base, cls.mlp_s, cls.mlp_m, cls.mlp_l);
  }

  // 4. Run the workload under RM1/RM2/RM3 and report savings vs the idle RM.
  workload::WorkloadMix mix;
  mix.name = "quickstart";
  mix.scenario = workload::Scenario::One;
  mix.app_ids = {suite.index_of(app1), suite.index_of(app2)};

  rmsim::ExperimentRunner runner(db);
  const auto trace_limit = args.get_int("trace", 0);
  for (const rm::RmPolicy policy :
       {rm::RmPolicy::Rm1, rm::RmPolicy::Rm2, rm::RmPolicy::Rm3}) {
    rm::RmConfig config;
    config.policy = policy;
    config.model = rm::PerfModelKind::Model3;
    const rmsim::SavingsResult r = runner.run(mix, config);
    double vio_sum = 0.0;
    double vio_max = 0.0;
    for (const rmsim::CoreResult& c : r.run.cores) {
      vio_sum += c.violation_sum;
      vio_max = std::max(vio_max, c.violation_max);
    }
    const auto n_vio = r.run.total_violations();
    std::printf(
        "%-4s energy %8.3f J  savings %6.2f%%  violations %llu/%llu "
        "(mean %.2f%%, max %.2f%%)\n",
        rm::rm_policy_name(policy), r.run.total_energy_j(), r.savings * 100.0,
        static_cast<unsigned long long>(n_vio),
        static_cast<unsigned long long>(r.run.total_intervals()),
        n_vio ? vio_sum / static_cast<double>(n_vio) * 100.0 : 0.0,
        vio_max * 100.0);

    // Optional: dump the first --trace interval decisions of this policy.
    if (trace_limit > 0) {
      std::int64_t shown = 0;
      rmsim::IntervalSimulator sim(db);
      (void)sim.run(mix, config, [&](const rmsim::IntervalObservation& obs) {
        if (shown++ >= trace_limit) return;
        std::printf("  t=%7.1fms core%d app%d phase%d  %s@%.2fGHz w=%-2d  "
                    "dur=%5.1fms e=%6.1fmJ\n",
                    obs.start_s * 1e3, obs.core, obs.app, obs.phase,
                    arch::core_size_name(obs.setting.c).data(),
                    arch::VfTable::frequency_hz(obs.setting.f_idx) / 1e9,
                    obs.setting.w, obs.duration_s * 1e3, obs.energy_j * 1e3);
      });
    }
  }
  return 0;
}
