// Tradeoff explorer: dissect one application the way the RM sees it.
//
//   $ ./examples/tradeoff_explorer --app=mcf
//
// Prints (a) the ground-truth miss curve and MLP per core size, (b) the
// ground-truth interval time/energy across the (c, f, w) space at QoS-
// feasible points, and (c) the local optimizer's choice per LLC allocation
// for RM1/RM2/RM3 - the energy curves E*(w) that feed the global optimizer.
#include <cstdio>

#include "common/cli.hh"
#include "common/table.hh"
#include "rm/local_opt.hh"
#include "rmsim/snapshot.hh"
#include "workload/classify.hh"

using namespace qosrm;

namespace {

void print_characterization(const workload::SimDb& db, int app) {
  const workload::AppClassification cls = workload::classify_app(db, app);
  std::printf("category: %s\n", workload::category_name(cls.category()));

  AsciiTable mpki({"ways", "4", "6", "8", "10", "12", "14", "16"});
  std::vector<std::string> row = {"MPKI"};
  for (const int w : {4, 6, 8, 10, 12, 14, 16}) {
    row.push_back(AsciiTable::num(db.app_mpki(app, w), 2));
  }
  mpki.add_row(row);
  mpki.print();

  AsciiTable mlp({"core", "S", "M", "L"});
  mlp.add_row({"MLP@8w", AsciiTable::num(db.app_mlp(app, arch::CoreSize::S), 2),
               AsciiTable::num(db.app_mlp(app, arch::CoreSize::M), 2),
               AsciiTable::num(db.app_mlp(app, arch::CoreSize::L), 2)});
  mlp.print();
}

void print_local_curves(const workload::SimDb& db, int app) {
  // Counters of the dominant phase executed at the baseline setting.
  const workload::Setting base = workload::baseline_setting(db.system());
  const rm::CounterSnapshot snap = rmsim::make_snapshot(db, app, 0, base);

  const rm::PerfModel perf(rm::PerfModelKind::Model3, db.system());
  const rm::OnlineEnergyModel energy(db.power());

  AsciiTable table({"w", "RM1 E(w) [mJ]", "RM2 choice", "RM2 E(w) [mJ]",
                    "RM3 choice", "RM3 E(w) [mJ]"});
  const rm::LocalOptimizer rm1(perf, energy, {false, false});
  const rm::LocalOptimizer rm2(perf, energy, {true, false});
  const rm::LocalOptimizer rm3(perf, energy, {true, true});
  const rm::LocalOptResult r1 = rm1.optimize(snap);
  const rm::LocalOptResult r2 = rm2.optimize(snap);
  const rm::LocalOptResult r3 = rm3.optimize(snap);

  auto choice_str = [](const rm::WayChoice& c) -> std::string {
    if (!c.feasible) return "-";
    char buf[32];
    std::snprintf(buf, sizeof(buf), "%s@%.2fGHz",
                  arch::core_size_name(c.setting.c).data(),
                  arch::VfTable::frequency_hz(c.setting.f_idx) / 1e9);
    return buf;
  };
  auto energy_str = [](const rm::WayChoice& c) -> std::string {
    return c.feasible ? AsciiTable::num(c.energy_j * 1e3, 2) : "inf";
  };

  for (int w = db.system().llc.min_ways; w <= db.system().llc.max_ways; ++w) {
    table.add_row({std::to_string(w), energy_str(r1.at(w)), choice_str(r2.at(w)),
                   energy_str(r2.at(w)), choice_str(r3.at(w)),
                   energy_str(r3.at(w))});
  }
  table.print();
}

}  // namespace

int main(int argc, char** argv) {
  CliArgs args(argc, argv);
  const std::string name = args.get("app", "mcf");

  const workload::SpecSuite& suite = workload::spec_suite();
  const int app = suite.index_of(name);
  if (app < 0) {
    std::fprintf(stderr, "unknown application: %s\n", name.c_str());
    return 1;
  }

  arch::SystemConfig system;
  system.cores = 2;
  const power::PowerModel power;
  const workload::SimDb db(suite, system, power);

  std::printf("=== %s ===\n", name.c_str());
  print_characterization(db, app);
  std::printf("\nlocal-optimizer energy curves (dominant phase, counters at "
              "the baseline setting):\n");
  print_local_curves(db, app);
  return 0;
}
