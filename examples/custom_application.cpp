// Bring-your-own application: defines a custom AppProfile from scratch
// (outside the built-in SPEC-like suite), characterizes it, classifies it
// with the paper's criteria, and runs it under RM3 against a built-in
// partner.
//
// This demonstrates the full extension surface of the workload API:
// StackProfile -> PhaseParams -> AppProfile -> SpecSuite-independent SimDb
// is not required; the characterization entry point works per phase.
#include <algorithm>
#include <cmath>
#include <cstdio>

#include "arch/core_model.hh"
#include "arch/dvfs.hh"
#include "common/table.hh"
#include "power/power_model.hh"
#include "workload/phase_stats.hh"

using namespace qosrm;

int main() {
  // A hypothetical in-memory key-value store: large hot set (cache
  // sensitive around 10 ways), bursty independent lookups (high MLP
  // headroom), moderate ILP.
  workload::PhaseParams lookup_phase;
  lookup_phase.name = "kvstore/lookup";
  lookup_phase.lpki = 9.0;
  lookup_phase.reuse = workload::make_stack_profile(
      /*hot=*/0.30, /*sensitive=*/0.50, /*center=*/10.0, /*width=*/2.5,
      /*cold=*/0.10);
  lookup_phase.dep_frac = 0.15;   // hash-bucket chains are short
  lookup_phase.burst_size = 12.0; // independent requests in flight
  lookup_phase.intra_gap = 16.0;
  lookup_phase.ilp = 3.4;
  lookup_phase.cpi_branch = 0.08;
  lookup_phase.cpi_cache = 0.15;

  workload::PhaseParams scan_phase = lookup_phase;
  scan_phase.name = "kvstore/scan";
  scan_phase.reuse = workload::make_stack_profile(0.15, 0.05, 5.0, 2.0, 0.80);
  scan_phase.lpki = 12.0;
  scan_phase.dep_frac = 0.02;

  arch::SystemConfig system;
  system.cores = 2;

  std::printf("=== custom application: in-memory KV store ===\n\n");
  for (const workload::PhaseParams& phase : {lookup_phase, scan_phase}) {
    const workload::PhaseStats stats =
        characterize_phase(phase, system, {}, /*seed=*/42);

    std::printf("phase %s:\n", phase.name.c_str());
    AsciiTable table({"metric", "4w", "8w", "12w", "16w"});
    std::vector<std::string> mpki_row = {"MPKI"};
    for (const int w : {4, 8, 12, 16}) {
      mpki_row.push_back(AsciiTable::num(stats.mpki(w), 2));
    }
    table.add_row(std::move(mpki_row));
    for (const arch::CoreSize c : arch::kAllCoreSizes) {
      std::vector<std::string> row = {
          std::string("MLP on ") + std::string(arch::core_size_name(c))};
      for (const int w : {4, 8, 12, 16}) {
        row.push_back(AsciiTable::num(stats.mlp_true(c, w), 2));
      }
      table.add_row(std::move(row));
    }
    table.print();

    // Manual classification with the paper's thresholds.
    const double mpki8 = stats.mpki(8);
    const double swing = std::max(std::abs(stats.mpki(4) - mpki8),
                                  std::abs(stats.mpki(12) - mpki8));
    const bool cs = mpki8 >= 0.2 && swing > 0.2 * mpki8;
    const double mlp_s = stats.mlp_true(arch::CoreSize::S, 8);
    const double mlp_m = stats.mlp_true(arch::CoreSize::M, 8);
    const double mlp_l = stats.mlp_true(arch::CoreSize::L, 8);
    const bool ps = (mlp_l - mlp_s) > 0.3 * mlp_m && mlp_l >= 2.0;
    std::printf("  -> %s-%s\n\n", cs ? "CS" : "CI", ps ? "PS" : "PI");

    // Ground-truth time/energy of this phase across the three core sizes at
    // the QoS-equivalent frequency (what the local optimizer trades).
    AsciiTable trade({"setting", "interval time [ms]", "core+mem energy [mJ]"});
    const power::PowerModel pm;
    for (const arch::CoreSize c : arch::kAllCoreSizes) {
      const arch::IntervalTiming t = arch::evaluate_interval(
          stats.characteristics(), stats.memory_truth(c, 8, system.mem_latency_s),
          c, 2e9);
      const power::IntervalEnergy e = pm.interval_energy(
          c, arch::VfTable::baseline(), t, stats.interval_instructions,
          stats.memory_truth(c, 8, system.mem_latency_s).llc_misses);
      trade.add_row({std::string(arch::core_size_name(c)) + " @ 2 GHz, 8w",
                     AsciiTable::num(t.total_seconds * 1e3, 2),
                     AsciiTable::num(e.total_j() * 1e3, 1)});
    }
    trade.print();
    std::printf("\n");
  }

  std::printf("The lookup phase is CS-PS: exactly the profile where the\n"
              "paper's RM3 extracts the largest coordinated savings.\n");
  return 0;
}
