// MLP-counter walkthrough: replays the paper's Fig. 4 example through the
// real MlpAtd hardware model, printing the per-arrival decisions for the S
// and M core sizes, then contrasts the heuristic with the oracle on a small
// pointer-chasing vs streaming trace.
//
// This is the "hello world" of the paper's third contribution: estimating
// leading misses for every (core size, LLC allocation) online.
#include <cstdio>

#include "cache/arrival.hh"
#include "cache/mlp_atd.hh"
#include "cache/mlp_oracle.hh"
#include "cache/recency.hh"
#include "common/rng.hh"
#include "common/table.hh"

using namespace qosrm;

namespace {

void figure4_walkthrough() {
  std::printf("=== Paper Fig. 4 walkthrough ===\n\n");
  std::printf("Instruction stream: LD1(inst 5), LD2(inst 20, depends on LD1),\n"
              "LD3(inst 33), LD4(inst 90); all miss in the LLC allocation.\n"
              "ATD arrival order: LD1, LD3, LD2, LD4 (LD2 waits for LD1's data).\n\n");

  // The arrival-order stream with quantized instruction indices.
  struct Arrival {
    const char* name;
    std::uint64_t inst;
  };
  const Arrival arrivals[] = {{"LD1", 5}, {"LD3", 33}, {"LD2", 20}, {"LD4", 90}};

  cache::MlpAtdConfig cfg;
  cfg.sets = 1;
  cfg.min_ways = 1;
  cache::MlpAtd atd(cfg);

  AsciiTable table({"arrival", "inst idx", "LM count (S)", "LM count (M)",
                    "LM count (L)"});
  std::uint64_t tag = 100;
  for (const Arrival& a : arrivals) {
    atd.observe({a.inst, 0, tag++, false});
    table.add_row({a.name, std::to_string(a.inst),
                   AsciiTable::num(atd.leading_misses(arch::CoreSize::S, 16), 0),
                   AsciiTable::num(atd.leading_misses(arch::CoreSize::M, 16), 0),
                   AsciiTable::num(atd.leading_misses(arch::CoreSize::L, 16), 0)});
  }
  table.print();
  std::printf("\nPaper result: S core (ROB 64) counts 3 leading misses\n"
              "(LD1, LD2 via out-of-order arrival, LD4 beyond the ROB);\n"
              "M core (ROB 128) counts 2 (LD4 now overlaps LD2's group).\n\n");
}

void heuristic_vs_oracle() {
  std::printf("=== Heuristic vs oracle on synthetic access patterns ===\n\n");

  struct Pattern {
    const char* name;
    double dep_frac;
  };
  for (const Pattern pattern : {Pattern{"streaming (independent loads)", 0.0},
                                Pattern{"pointer chasing (dependent)", 0.9}}) {
    // Build a 2000-load trace: bursts of 8 loads, 20 instructions apart.
    Rng rng(7);
    std::vector<cache::LlcAccess> trace;
    std::uint64_t inst = 0, tag = 1;
    for (int i = 0; i < 2000; ++i) {
      const bool burst_start = i % 8 == 0;
      inst += burst_start ? 600 : 20;
      trace.push_back({inst, 0, tag++, !burst_start &&
                                            rng.bernoulli(pattern.dep_frac)});
    }
    cache::RecencyProfiler prof(1, 16);
    const auto recency = prof.annotate(trace);
    const auto order = cache::emulate_arrival_order(trace, recency, {});

    cache::MlpAtdConfig cfg;
    cfg.sets = 1;
    cfg.min_ways = 1;
    cache::MlpAtd atd(cfg);
    for (const std::uint32_t pos : order) atd.observe(trace[pos]);

    AsciiTable table({"core", "oracle LM", "ATD LM", "oracle MLP", "ATD MLP"});
    for (const arch::CoreSize c : arch::kAllCoreSizes) {
      const double oracle =
          cache::MlpOracle::leading_misses(trace, recency, c, 16);
      const double est = atd.leading_misses(c, 16);
      table.add_row({std::string(arch::core_size_name(c)),
                     AsciiTable::num(oracle, 0), AsciiTable::num(est, 0),
                     AsciiTable::num(2000.0 / oracle, 2),
                     AsciiTable::num(2000.0 / std::max(1.0, est), 2)});
    }
    std::printf("%s:\n", pattern.name);
    table.print();
    std::printf("\n");
  }
  std::printf("Streaming bursts overlap more on bigger cores (MLP grows with\n"
              "the ROB); dependence chains pin MLP near 1 at every size.\n");
}

}  // namespace

int main() {
  figure4_walkthrough();
  heuristic_vs_oracle();
  return 0;
}
